"""Negative-sampling trainer for KGE models.

The trainer implements the standard KGC training loop: minibatch the
training triples, corrupt each triple into ``num_negatives`` negatives
(half head-corrupted, half tail-corrupted), compute one of the losses in
:mod:`repro.models.losses`, and take an optimizer step.  Epoch-end
callbacks receive the model and can run (full or estimated) evaluation —
that hook is how every "per-epoch correlation" experiment in the paper is
driven.

Two negative samplers are provided:

* :class:`UniformNegativeSampler` — the standard corruption scheme;
* :class:`RecommenderNegativeSampler` — corrupts with entities drawn from
  relation-recommender probabilities, the paper's Section 7 future-work
  item (harder negatives during *training*, not just evaluation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.autodiff.engine import reshape
from repro.kg.graph import KnowledgeGraph
from repro.obs import get_tracer
from repro.models.base import KGEModel
from repro.models.kernels import fused_step, get_fused_loss, get_kernel
from repro.models.losses import get_loss, loss_value
from repro.models.optim import build_optimizer


class NegativeSampler(Protocol):
    """Produces corrupted entity ids for a batch of training triples."""

    def corrupt(
        self,
        relations: np.ndarray,
        num_negatives: int,
        corrupt_head: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """``(b, num_negatives)`` replacement entity ids.

        ``corrupt_head`` is a boolean ``(b,)`` mask: True rows replace the
        head, False rows replace the tail.  Samplers may condition on the
        relation and side (the recommender sampler does).
        """
        ...


class UniformNegativeSampler:
    """Uniform corruption over the full entity vocabulary.

    ``filter_positives=True`` opts into vectorized false-negative
    rejection: corruptions that collide with a known true triple are
    redrawn (uniformly, in bounded rounds) until the batch is collision
    free.  ``known_triples`` accepts a :class:`~repro.kg.graph.
    KnowledgeGraph` (all splits, via its filter structures) or an
    ``(n, 3)`` integer array / iterable of ``(h, r, t)`` triples.  The
    trainer calls :meth:`resample_collisions` in place of its legacy
    per-triple Python loop whenever the sampler was built this way.
    """

    def __init__(
        self,
        num_entities: int,
        known_triples=None,
        filter_positives: bool = False,
        max_rounds: int = 16,
    ):
        if num_entities <= 0:
            raise ValueError("need a positive entity count")
        if filter_positives and known_triples is None:
            raise ValueError("filter_positives=True requires known_triples")
        self.num_entities = num_entities
        self.filter_positives = filter_positives
        self.max_rounds = max_rounds
        self._known_keys: np.ndarray | None = None
        self._relation_factor = 0
        if known_triples is not None:
            triples = (
                known_triples.all_triples.array
                if isinstance(known_triples, KnowledgeGraph)
                else np.asarray(list(known_triples), dtype=np.int64).reshape(-1, 3)
            )
            self._relation_factor = int(triples[:, 1].max()) + 1 if len(triples) else 1
            self._known_keys = np.unique(self._pack(triples[:, 0], triples[:, 1], triples[:, 2]))

    def _pack(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> np.ndarray:
        """Collision-free int64 key per triple (within the known id ranges)."""
        return (
            np.asarray(heads, dtype=np.int64) * self._relation_factor
            + np.asarray(relations, dtype=np.int64)
        ) * self.num_entities + np.asarray(tails, dtype=np.int64)

    def corrupt(
        self,
        relations: np.ndarray,
        num_negatives: int,
        corrupt_head: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        del corrupt_head  # uniform sampling ignores the side
        return rng.integers(
            self.num_entities, size=(relations.shape[0], num_negatives)
        )

    def resample_collisions(
        self,
        neg_heads: np.ndarray,
        neg_relations: np.ndarray,
        neg_tails: np.ndarray,
        corrupt_head: np.ndarray,
        rng: np.random.Generator,
    ) -> int:
        """Redraw (in place) corruptions that form known true triples.

        Returns the number of collisions remaining after ``max_rounds``
        (0 in practice: each round redraws uniformly, so survivors decay
        geometrically with the true-triple density).
        """
        if self._known_keys is None:
            raise ValueError("sampler was built without known_triples")
        head_slots = np.broadcast_to(corrupt_head[:, None], neg_heads.shape)

        def collisions() -> np.ndarray:
            # Relations beyond the known range cannot collide by
            # construction; mask them out of the packed-key lookup.
            in_range = neg_relations < self._relation_factor
            keys = self._pack(neg_heads, neg_relations, neg_tails)
            return in_range & np.isin(keys, self._known_keys)

        for _ in range(self.max_rounds):
            colliding = collisions()
            if not colliding.any():
                return 0
            redraw_heads = colliding & head_slots
            redraw_tails = colliding & ~head_slots
            if redraw_heads.any():
                neg_heads[redraw_heads] = rng.integers(
                    self.num_entities, size=int(redraw_heads.sum())
                )
            if redraw_tails.any():
                neg_tails[redraw_tails] = rng.integers(
                    self.num_entities, size=int(redraw_tails.sum())
                )
        return int(collisions().sum())


class RecommenderNegativeSampler:
    """Corruption guided by relation-recommender scores (paper Section 7).

    For a triple of relation ``r``, head corruptions come from the domain
    column of the score matrix and tail corruptions from its range column,
    so negatives are concentrated on *credible* (hard) entities.  Two
    guidance modes:

    * ``"proportional"`` — sampling probability proportional to the score
      (the paper's probabilistic evaluation strategy transplanted to
      training).  Aggressive: over-trains against popular entities;
    * ``"support"`` — uniform within the non-zero-score candidate set,
      the type-constrained corruption of Krompass et al. (2015) that the
      paper cites as the established variant.

    A uniform-mixing floor keeps every entity reachable in both modes.
    """

    def __init__(
        self,
        scores,
        num_relations: int,
        uniform_mix: float = 0.1,
        mode: str = "support",
    ):
        # ``scores`` is anything exposing column_probabilities(relation, side)
        # — in practice a fitted recommender from repro.recommenders.
        if not 0.0 <= uniform_mix <= 1.0:
            raise ValueError(f"uniform_mix must be in [0, 1], got {uniform_mix}")
        if mode not in ("proportional", "support"):
            raise ValueError(f"mode must be 'proportional' or 'support', got {mode!r}")
        self.scores = scores
        self.num_relations = num_relations
        self.uniform_mix = uniform_mix
        self.mode = mode
        self._cache: dict[tuple[int, str], np.ndarray] = {}

    def _probabilities(self, relation: int, side: str) -> np.ndarray:
        key = (relation, side)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        probs = self.scores.column_probabilities(relation, side)
        if self.mode == "support":
            support = (probs > 0).astype(np.float64)
            total = support.sum()
            probs = support / total if total else np.full_like(probs, 1.0 / probs.shape[0])
        uniform = np.full_like(probs, 1.0 / probs.shape[0])
        mixed = (1.0 - self.uniform_mix) * probs + self.uniform_mix * uniform
        mixed = mixed / mixed.sum()
        self._cache[key] = mixed
        return mixed

    def corrupt(
        self,
        relations: np.ndarray,
        num_negatives: int,
        corrupt_head: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        out = np.empty((relations.shape[0], num_negatives), dtype=np.int64)
        for i, (relation, is_head) in enumerate(zip(relations, corrupt_head)):
            side = "head" if is_head else "tail"
            probs = self._probabilities(int(relation), side)
            out[i] = rng.choice(probs.shape[0], size=num_negatives, p=probs)
        return out


@dataclass
class TrainingConfig:
    """All trainer knobs in one place.

    ``filter_false_negatives`` redraws corruptions that accidentally form
    a known training triple.  Uniform corruption rarely collides, but
    recommender-guided corruption concentrates on credible entities and
    would otherwise push *true* triples down — the classic hard-negative
    false-negative trap.

    ``use_fused`` (default True) routes models with an analytic kernel
    (:mod:`repro.models.kernels`) through the fused score+gradient fast
    path with sparse row-indexed optimizer updates; models without a
    kernel — or ``use_fused=False`` (CLI ``--no-fused``) — train through
    the autodiff engine exactly as before.
    """

    epochs: int = 20
    batch_size: int = 512
    num_negatives: int = 8
    lr: float = 0.05
    loss: str = "margin"
    margin: float = 1.0
    optimizer: str = "adam"
    weight_decay: float = 0.0
    filter_false_negatives: bool = True
    use_fused: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        if self.batch_size <= 0 or self.num_negatives <= 0:
            raise ValueError("batch_size and num_negatives must be positive")
        # Fail at construction, not mid-fit: a typo'd loss or optimizer
        # name would otherwise surface only after the dataset is loaded
        # and the first batch assembled.
        from repro.models.losses import available_losses
        from repro.models.optim import OPTIMIZERS

        if self.loss not in available_losses():
            raise ValueError(
                f"unknown loss {self.loss!r}; available: "
                f"{', '.join(available_losses())}"
            )
        if self.optimizer.lower() not in OPTIMIZERS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; available: "
                f"{', '.join(OPTIMIZERS)}"
            )


@dataclass
class EpochRecord:
    """Loss and timing of one epoch."""

    epoch: int
    loss: float
    seconds: float


@dataclass
class TrainingHistory:
    """Per-epoch records plus whatever callbacks attached."""

    records: list[EpochRecord] = field(default_factory=list)
    extras: dict[str, list] = field(default_factory=dict)

    @property
    def losses(self) -> list[float]:
        return [r.loss for r in self.records]

    def attach(self, key: str, value) -> None:
        """Append a callback-produced value under ``key``."""
        self.extras.setdefault(key, []).append(value)


EpochCallback = Callable[[int, KGEModel, TrainingHistory], None]


class Trainer:
    """Minibatch negative-sampling trainer."""

    def __init__(
        self,
        config: TrainingConfig | None = None,
        sampler: NegativeSampler | None = None,
    ):
        self.config = config or TrainingConfig()
        self.sampler = sampler

    def _batches(self, n: int, rng: np.random.Generator):
        order = rng.permutation(n)
        for start in range(0, n, self.config.batch_size):
            yield order[start : start + self.config.batch_size]

    def _augment_inverse(
        self, triples: np.ndarray, inverse_offset: int
    ) -> np.ndarray:
        """Add reciprocal triples ``(t, r + offset, h)`` for ConvE-style models."""
        inverse = np.stack(
            [triples[:, 2], triples[:, 1] + inverse_offset, triples[:, 0]], axis=1
        )
        return np.concatenate([triples, inverse], axis=0)

    def fit(
        self,
        model: KGEModel,
        graph: KnowledgeGraph,
        callbacks: list[EpochCallback] | None = None,
    ) -> TrainingHistory:
        """Train ``model`` on ``graph.train`` and return the history."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        sampler = self.sampler or UniformNegativeSampler(graph.num_entities)
        loss_fn = get_loss(config.loss)
        optimizer = build_optimizer(
            config.optimizer,
            model.parameter_list(),
            lr=config.lr,
            weight_decay=config.weight_decay,
        )
        triples = graph.train.array
        inverse_offset = getattr(model, "inverse_offset", None)
        if inverse_offset is not None:
            triples = self._augment_inverse(triples, inverse_offset)
        known_triples = (
            {(int(h), int(r), int(t)) for h, r, t in triples}
            if config.filter_false_negatives
            and not getattr(sampler, "filter_positives", False)
            else None
        )
        fused = None
        if config.use_fused:
            kernel = get_kernel(model)
            loss_grad = get_fused_loss(config.loss)
            if kernel is not None and loss_grad is not None:
                fused = (kernel, loss_grad)

        history = TrainingHistory()
        callbacks = callbacks or []
        tracer = get_tracer()
        model.train_mode(True)
        with tracer.span("train.fit"):
            for epoch in range(config.epochs):
                start = time.perf_counter()
                epoch_loss = 0.0
                num_batches = 0
                with tracer.span("train.epoch"):
                    for batch_idx in self._batches(triples.shape[0], rng):
                        batch = triples[batch_idx]
                        loss = self._step(
                            model, batch, sampler, loss_fn, optimizer, rng,
                            known_triples, fused,
                        )
                        epoch_loss += loss
                        num_batches += 1
                    tracer.add("batches", num_batches)
                    tracer.add("triples", triples.shape[0])
                    tracer.add("loss", epoch_loss)
                mean_loss = epoch_loss / max(num_batches, 1)
                history.records.append(
                    EpochRecord(
                        epoch=epoch, loss=mean_loss, seconds=time.perf_counter() - start
                    )
                )
                model.train_mode(False)
                with tracer.span("train.callbacks"):
                    for callback in callbacks:
                        callback(epoch, model, history)
                model.train_mode(True)
        model.train_mode(False)
        return history

    def _filter_false_negatives(
        self,
        neg_heads: np.ndarray,
        neg_relations: np.ndarray,
        neg_tails: np.ndarray,
        corrupt_head: np.ndarray,
        known_triples: set[tuple[int, int, int]],
        rng: np.random.Generator,
        num_entities: int,
    ) -> None:
        """Redraw corruptions that collide with known true triples.

        The corrupted side of a colliding negative is replaced with one
        uniform redraw (in place); a second collision is left alone —
        vanishingly rare and harmless.
        """
        rows, cols = neg_heads.shape
        for i in range(rows):
            replace_head = bool(corrupt_head[i])
            for j in range(cols):
                triple = (int(neg_heads[i, j]), int(neg_relations[i, j]), int(neg_tails[i, j]))
                if triple in known_triples:
                    replacement = int(rng.integers(num_entities))
                    if replace_head:
                        neg_heads[i, j] = replacement
                    else:
                        neg_tails[i, j] = replacement

    def _step(
        self,
        model: KGEModel,
        batch: np.ndarray,
        sampler: NegativeSampler,
        loss_fn,
        optimizer,
        rng: np.random.Generator,
        known_triples: set[tuple[int, int, int]] | None = None,
        fused: tuple | None = None,
    ) -> float:
        config = self.config
        heads, relations, tails = batch[:, 0], batch[:, 1], batch[:, 2]
        b = batch.shape[0]
        corrupt_head = rng.random(b) < 0.5
        replacements = sampler.corrupt(relations, config.num_negatives, corrupt_head, rng)

        neg_heads = np.repeat(heads[:, None], config.num_negatives, axis=1)
        neg_tails = np.repeat(tails[:, None], config.num_negatives, axis=1)
        neg_heads[corrupt_head] = replacements[corrupt_head]
        neg_tails[~corrupt_head] = replacements[~corrupt_head]
        neg_relations = np.repeat(relations[:, None], config.num_negatives, axis=1)
        if getattr(sampler, "filter_positives", False):
            sampler.resample_collisions(
                neg_heads, neg_relations, neg_tails, corrupt_head, rng
            )
        elif known_triples is not None:
            self._filter_false_negatives(
                neg_heads,
                neg_relations,
                neg_tails,
                corrupt_head,
                known_triples,
                rng,
                model.num_entities,
            )

        if fused is not None:
            kernel, loss_grad = fused
            # The post-filtering corrupted side, back in (b, k) form.
            corrupted = np.where(corrupt_head[:, None], neg_heads, neg_tails)
            loss, row_grads = fused_step(
                model,
                kernel,
                loss_grad,
                heads,
                relations,
                tails,
                corrupted,
                corrupt_head,
                margin=config.margin,
            )
            parameters = model.parameters
            optimizer.step_rows(
                [
                    (parameters[name], rows, grads)
                    for name, (rows, grads) in row_grads.items()
                ]
            )
            return loss_value(loss)

        positive = model.score_triples(heads, relations, tails)
        negative_flat = model.score_triples(
            neg_heads.reshape(-1), neg_relations.reshape(-1), neg_tails.reshape(-1)
        )
        negative = reshape(negative_flat, (b, config.num_negatives))
        loss = loss_fn(positive, negative, margin=config.margin)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss_value(loss)
