"""DistMult (Yang et al., 2014): bilinear-diagonal scoring ``<h, r, t>``."""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, gather, mul, sum_
from repro.kg.graph import Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


class DistMult(KGEModel):
    """DistMult: ``score(h, r, t) = sum_d e_h[d] * w_r[d] * e_t[d]``.

    The relation matrix is diagonal, which makes the model symmetric in
    head/tail — a known expressiveness limit that shows up in its ranking
    metrics but is irrelevant to the evaluation framework itself.
    """

    name = "distmult"

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, self.dim))
        )
        self.relation = self._add_parameter(
            "relation", xavier_uniform(rng, (self.num_relations, self.dim))
        )

    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        h = gather(self.entity, check_ids(heads, self.num_entities, "head"))
        r = gather(self.relation, check_ids(relations, self.num_relations, "relation"))
        t = gather(self.entity, check_ids(tails, self.num_entities, "tail"))
        return sum_(mul(mul(h, r), t), axis=-1)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        del side  # DistMult is head/tail symmetric
        query = self.entity.data[anchor] * self.relation.data[relation]
        return self.entity.data @ query

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        del side
        candidates = check_ids(candidates, self.num_entities, "candidate")
        query = self.entity.data[anchor] * self.relation.data[relation]
        return self.entity.data[candidates] @ query

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        del side
        anchors = check_ids(anchors, self.num_entities, "anchor")
        entities = self.entity.data
        cand = entities if candidates is None else entities[check_ids(candidates, self.num_entities, "candidate")]
        queries = entities[anchors] * self.relation.data[relation]
        return queries @ cand.T
