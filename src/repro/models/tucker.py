"""TuckER (Balazevic et al., 2019): Tucker decomposition scoring.

``score(h, r, t) = W x_1 e_h x_2 w_r x_3 e_t`` with a shared core tensor
``W`` of shape ``(d_e, d_r, d_e)``.  We use ``d_r = d_e = dim`` to keep the
configuration surface small.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, einsum, gather, mul, sum_
from repro.kg.graph import HEAD, Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


class TuckER(KGEModel):
    """TuckER with a ``dim x dim x dim`` core tensor."""

    name = "tucker"

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, self.dim))
        )
        self.relation = self._add_parameter(
            "relation", xavier_uniform(rng, (self.num_relations, self.dim))
        )
        # The core starts near-diagonal so the model begins DistMult-like
        # and learns interactions from there; pure random cores train
        # noticeably slower at these small dims.
        core = 0.1 * rng.standard_normal((self.dim, self.dim, self.dim))
        idx = np.arange(self.dim)
        core[idx, idx, idx] += 1.0
        self.core = self._add_parameter("core", core)

    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        h = gather(self.entity, check_ids(heads, self.num_entities, "head"))
        r = gather(self.relation, check_ids(relations, self.num_relations, "relation"))
        t = gather(self.entity, check_ids(tails, self.num_entities, "tail"))
        hw = einsum("bi,ijk->bjk", h, self.core)
        hrw = einsum("bjk,bj->bk", hw, r)
        return sum_(mul(hrw, t), axis=-1)

    def _query_vector(self, anchor: int, relation: int, side: Side) -> np.ndarray:
        w = self.core.data
        r = self.relation.data[relation]
        a = self.entity.data[anchor]
        if side == HEAD:
            # score(h) = h . (W x_2 r x_3 t)
            return np.einsum("ijk,j,k->i", w, r, a)
        # score(t) = (W x_1 h x_2 r) . t
        return np.einsum("ijk,i,j->k", w, a, r)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        return self.entity.data @ self._query_vector(anchor, relation, side)

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        return self.entity.data[candidates] @ self._query_vector(anchor, relation, side)

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        entities = self.entity.data
        cand = entities if candidates is None else entities[check_ids(candidates, self.num_entities, "candidate")]
        w = self.core.data
        r = self.relation.data[relation]
        anchor_emb = entities[anchors]
        if side == HEAD:
            queries = np.einsum("ijk,j,bk->bi", w, r, anchor_emb)
        else:
            queries = np.einsum("ijk,bi,j->bk", w, anchor_emb, r)
        return queries @ cand.T
