"""KGE model substrate: seven scoring models, losses, optimizers, trainer.

The registry in :func:`build_model` is how experiments request models by
the names used in the paper's tables.
"""

from __future__ import annotations

from repro.models.base import DTYPES, KGEModel, xavier_uniform
from repro.models.complex_ import ComplEx
from repro.models.conve import ConvE
from repro.models.distmult import DistMult
from repro.models.kernels import available_kernels, get_kernel, has_kernel
from repro.models.losses import available_losses, get_loss
from repro.models.optim import SGD, Adagrad, Adam, build_optimizer, coalesce_rows
from repro.models.oracle import OracleModel
from repro.models.random_model import RandomModel
from repro.models.rescal import RESCAL
from repro.models.rotate import RotatE
from repro.models.training import (
    RecommenderNegativeSampler,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    UniformNegativeSampler,
)
from repro.models.transe import TransE
from repro.models.tucker import TuckER

MODEL_REGISTRY: dict[str, type[KGEModel]] = {
    "transe": TransE,
    "distmult": DistMult,
    "complex": ComplEx,
    "rescal": RESCAL,
    "rotate": RotatE,
    "tucker": TuckER,
    "conve": ConvE,
}


def available_models() -> list[str]:
    """Names of the trainable KGE models (paper Section 5.2 set)."""
    return sorted(MODEL_REGISTRY)


from repro.models.io import load_model, save_model  # noqa: E402 — needs the registry


def build_model(
    name: str, num_entities: int, num_relations: int, dim: int = 32, seed: int = 0, **kwargs
) -> KGEModel:
    """Instantiate a registered model by its paper name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        )
    return MODEL_REGISTRY[key](num_entities, num_relations, dim=dim, seed=seed, **kwargs)


__all__ = [
    "DTYPES",
    "MODEL_REGISTRY",
    "Adagrad",
    "Adam",
    "ComplEx",
    "ConvE",
    "DistMult",
    "KGEModel",
    "OracleModel",
    "RESCAL",
    "RandomModel",
    "RecommenderNegativeSampler",
    "RotatE",
    "SGD",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "TransE",
    "TuckER",
    "UniformNegativeSampler",
    "available_kernels",
    "available_losses",
    "available_models",
    "build_model",
    "build_optimizer",
    "coalesce_rows",
    "get_kernel",
    "get_loss",
    "has_kernel",
    "load_model",
    "save_model",
    "xavier_uniform",
]
