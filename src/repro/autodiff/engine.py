"""A minimal reverse-mode automatic differentiation engine over numpy.

This substrate replaces PyTorch for the KGE models in :mod:`repro.models`.
It implements exactly the operator set those models need — embedding
gathers, broadcasting arithmetic, binary ``einsum``, element-wise
non-linearities and reductions — with a topological-sort backward pass.

Design notes
------------
* A :class:`Tensor` wraps a float64 (or, for reduced-precision models,
  float32) numpy array, its gradient, and the closure that routes output
  gradients to its parents.  Anything that is not already float32 is
  coerced to float64, so the default substrate stays double precision;
  float32 enters only when a model explicitly casts its parameters.
* Broadcasting is supported in arithmetic ops; gradients are "unbroadcast"
  (summed over expanded axes) on the way back.
* ``einsum`` is binary-only, and every index of each operand must appear in
  the output or the other operand (always true for the contractions KGE
  scoring needs); the backward pass is then itself an einsum.
* Embedding lookups are :func:`gather` along axis 0, with scatter-add
  backward — the only sparse-ish operation training needs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

Array = np.ndarray


def _coerce(value) -> Array:
    """float32 arrays pass through; everything else becomes float64."""
    array = np.asarray(value)
    if array.dtype == np.float32:
        return array
    return np.asarray(array, dtype=np.float64)


def _as_array(value: "Tensor | Array | float") -> Array:
    if isinstance(value, Tensor):
        raise TypeError("expected raw array, got Tensor")
    return _coerce(value)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A node in the computation graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data: Array | float | Sequence[float],
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[Array], None] | None = None,
    ):
        self.data = _coerce(data)
        self.grad: Array | None = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents
        self._backward = backward

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def accumulate_grad(self, grad: Array) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self) -> None:
        """Backpropagate from this scalar tensor."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar loss tensor")
        topo: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: Tensor) -> None:
            stack = [node]
            order: list[tuple[Tensor, bool]] = [(node, False)]
            # Iterative DFS to avoid recursion limits on deep graphs.
            order = []
            stack2: list[tuple[Tensor, bool]] = [(node, False)]
            while stack2:
                current, processed = stack2.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack2.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack2.append((parent, False))

        visit(self)
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Operator overloads
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        return add(self, _lift(other))

    __radd__ = __add__

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return sub(self, _lift(other))

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return sub(_lift(other), self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        return mul(self, _lift(other))

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return neg(self)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"


def _lift(value: "Tensor | float | Array") -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(_coerce(value))


def parameter(data: Array) -> Tensor:
    """A leaf tensor that accumulates gradients."""
    return Tensor(_coerce(data), requires_grad=True)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    """Broadcasting elementwise ``a + b``."""
    out_data = a.data + b.data

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad, b.shape))

    return Tensor(out_data, parents=(a, b), backward=backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Broadcasting elementwise ``a - b``."""
    out_data = a.data - b.data

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(-grad, b.shape))

    return Tensor(out_data, parents=(a, b), backward=backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Broadcasting elementwise ``a * b``."""
    out_data = a.data * b.data

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * a.data, b.shape))

    return Tensor(out_data, parents=(a, b), backward=backward)


def neg(a: Tensor) -> Tensor:
    """Elementwise ``-a``."""

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(-grad)

    return Tensor(-a.data, parents=(a,), backward=backward)


# ----------------------------------------------------------------------
# Element-wise non-linearities
# ----------------------------------------------------------------------
def abs_(a: Tensor) -> Tensor:
    """Elementwise ``|a|`` (subgradient 0 at 0, via ``sign``)."""
    sign = np.sign(a.data)

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * sign)

    return Tensor(np.abs(a.data), parents=(a,), backward=backward)


def relu(a: Tensor) -> Tensor:
    """Elementwise ``max(a, 0)``."""
    mask = a.data > 0

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor(a.data * mask, parents=(a,), backward=backward)


def sigmoid(a: Tensor) -> Tensor:
    """Elementwise logistic ``1 / (1 + exp(-a))``, input-clipped for stability."""
    value = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * value * (1.0 - value))

    return Tensor(value, parents=(a,), backward=backward)


def softplus(a: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = a.data
    value = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * sig)

    return Tensor(value, parents=(a,), backward=backward)


def sqrt(a: Tensor, eps: float = 1e-12) -> Tensor:
    """Elementwise ``sqrt(a + eps)``; ``eps`` keeps the gradient finite at 0."""
    value = np.sqrt(a.data + eps)

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * 0.5 / value)

    return Tensor(value, parents=(a,), backward=backward)


def square(a: Tensor) -> Tensor:
    """Elementwise ``a ** 2``."""

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * 2.0 * a.data)

    return Tensor(a.data**2, parents=(a,), backward=backward)


def tanh(a: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    value = np.tanh(a.data)

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * (1.0 - value**2))

    return Tensor(value, parents=(a,), backward=backward)


def sin(a: Tensor) -> Tensor:
    """Elementwise sine (RotatE uses sin/cos for phase rotations)."""
    cos_data = np.cos(a.data)

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * cos_data)

    return Tensor(np.sin(a.data), parents=(a,), backward=backward)


def cos(a: Tensor) -> Tensor:
    """Elementwise cosine (RotatE uses sin/cos for phase rotations)."""
    sin_data = np.sin(a.data)

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(-grad * sin_data)

    return Tensor(np.cos(a.data), parents=(a,), backward=backward)


def dropout(a: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or rate is 0."""
    if not training or rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return Tensor(a.data * mask, parents=(a,), backward=backward)


# ----------------------------------------------------------------------
# Reductions and shape ops
# ----------------------------------------------------------------------
def sum_(a: Tensor, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> Tensor:
    """Sum over ``axis`` (all elements when None); trailing underscore avoids the builtin."""
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: Array) -> None:
        if not a.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a.accumulate_grad(np.broadcast_to(g, a.shape).copy())

    return Tensor(out_data, parents=(a,), backward=backward)


def mean(a: Tensor, axis: int | None = None) -> Tensor:
    """Arithmetic mean over ``axis``, composed from ``sum_`` and a scale."""
    count = a.data.size if axis is None else a.data.shape[axis]
    return mul(sum_(a, axis=axis), _lift(1.0 / count))


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """View ``a`` with ``shape``; the gradient reshapes back."""
    original = a.shape

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(original))

    return Tensor(a.data.reshape(shape), parents=(a,), backward=backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``; gradients split at the seams."""
    sizes = [t.data.shape[axis] for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    offsets = np.cumsum([0] + sizes)

    def backward(grad: Array) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer: list[slice] = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor.accumulate_grad(grad[tuple(slicer)])

    return Tensor(out_data, parents=tuple(tensors), backward=backward)


def gather(table: Tensor, indices: Array) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add backward.

    ``indices`` may be any integer array shape; the result has shape
    ``indices.shape + table.shape[1:]``.  This is the embedding-lookup
    primitive.
    """
    idx = np.asarray(indices, dtype=np.int64)
    out_data = table.data[idx]

    def backward(grad: Array) -> None:
        if not table.requires_grad:
            return
        full = np.zeros_like(table.data)
        np.add.at(full, idx.reshape(-1), grad.reshape(-1, *table.data.shape[1:]))
        table.accumulate_grad(full)

    return Tensor(out_data, parents=(table,), backward=backward)


def gather_cols(a: Tensor, indices: Array) -> Tensor:
    """Column lookup ``a[:, indices]`` on a 2-D tensor, scatter-add backward.

    ``indices`` may repeat (as in im2col patch extraction); the result has
    shape ``(a.shape[0],) + indices.shape``.  This is the primitive that
    lets ConvE's 2-D convolution be expressed as gather + einsum.
    """
    if a.ndim != 2:
        raise ValueError(f"gather_cols expects a 2-D tensor, got ndim={a.ndim}")
    idx = np.asarray(indices, dtype=np.int64)
    out_data = a.data[:, idx.reshape(-1)].reshape(a.data.shape[0], *idx.shape)

    def backward(grad: Array) -> None:
        if not a.requires_grad:
            return
        full = np.zeros_like(a.data)
        np.add.at(
            full.T, idx.reshape(-1), grad.reshape(a.data.shape[0], -1).T
        )
        a.accumulate_grad(full)

    return Tensor(out_data, parents=(a,), backward=backward)


def einsum(subscripts: str, a: Tensor, b: Tensor) -> Tensor:
    """Binary einsum with einsum-based backward.

    Requirement: every index of each operand appears in the output or in
    the other operand (no lone summed indices), which makes
    ``grad_A = einsum(out->A-spec, grad_out, B)`` exact.
    """
    lhs, out_spec = subscripts.replace(" ", "").split("->")
    spec_a, spec_b = lhs.split(",")
    for spec, other in ((spec_a, spec_b), (spec_b, spec_a)):
        lonely = set(spec) - set(out_spec) - set(other)
        if lonely:
            raise ValueError(
                f"einsum {subscripts!r}: indices {sorted(lonely)} appear only in one "
                "operand; insert an explicit sum instead"
            )
    out_data = np.einsum(subscripts, a.data, b.data)

    def backward(grad: Array) -> None:
        if a.requires_grad:
            a.accumulate_grad(
                np.einsum(f"{out_spec},{spec_b}->{spec_a}", grad, b.data)
            )
        if b.requires_grad:
            b.accumulate_grad(
                np.einsum(f"{out_spec},{spec_a}->{spec_b}", grad, a.data)
            )

    return Tensor(out_data, parents=(a, b), backward=backward)


def stack_parameters(params: Iterable[Tensor]) -> list[Tensor]:
    """Validate and list parameter tensors (leaves with requires_grad)."""
    result = []
    for param in params:
        if param._parents:
            raise ValueError("parameters must be leaf tensors")
        if not param.requires_grad:
            raise ValueError("parameters must require gradients")
        result.append(param)
    return result
