"""Finite-difference gradient checking for the autodiff substrate.

:func:`gradcheck` is the ground truth the analytic training kernels are
validated against: the kernel equivalence tests first confirm (here) that
the autodiff gradients agree with central finite differences, then assert
that the fused kernels agree with autodiff to ~1e-9.  The chain
``finite differences -> autodiff -> fused kernels`` is what "correct by
construction" means for :mod:`repro.models.kernels`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.engine import Tensor


class GradcheckError(AssertionError):
    """Raised when an analytic gradient disagrees with finite differences."""


def gradcheck(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> float:
    """Compare backward-pass gradients of ``fn`` with central differences.

    ``fn`` takes no arguments, closes over ``params`` (leaf tensors with
    ``requires_grad``) and returns a scalar :class:`Tensor`.  Every element
    of every parameter is perturbed by ``+-eps`` and the analytic gradient
    must match ``(f(x + eps) - f(x - eps)) / (2 * eps)`` within
    ``atol + rtol * |fd|``.  Returns the worst absolute error seen; raises
    :class:`GradcheckError` on the first violating element.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.autodiff.engine import parameter, square, sum_
    >>> from repro.autodiff.gradcheck import gradcheck
    >>> x = parameter(np.array([1.0, -2.0, 0.5]))
    >>> gradcheck(lambda: sum_(square(x)), [x]) < 1e-8
    True

    A broken backward rule is caught:

    >>> from repro.autodiff.engine import Tensor
    >>> y = parameter(np.array([2.0]))
    >>> def wrong_double():
    ...     # claims d(2y)/dy = 3 instead of 2
    ...     return Tensor(
    ...         2.0 * y.data,
    ...         parents=(y,),
    ...         backward=lambda grad: y.accumulate_grad(3.0 * grad),
    ...     )
    >>> gradcheck(wrong_double, [y])
    Traceback (most recent call last):
        ...
    repro.autodiff.gradcheck.GradcheckError: ...
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    for param in params:
        if not param.requires_grad:
            raise ValueError("gradcheck parameters must require gradients")
        param.zero_grad()

    loss = fn()
    if loss.data.size != 1:
        raise ValueError("fn must return a scalar Tensor")
    loss.backward()
    analytic = [
        np.zeros_like(p.data) if p.grad is None else p.grad.copy() for p in params
    ]
    for param in params:
        param.zero_grad()

    worst = 0.0
    for index, param in enumerate(params):
        flat = param.data.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = fn().data.item()
            flat[i] = original - eps
            minus = fn().data.item()
            flat[i] = original
            fd = (plus - minus) / (2.0 * eps)
            an = float(analytic[index].reshape(-1)[i])
            error = abs(an - fd)
            worst = max(worst, error)
            if error > atol + rtol * abs(fd):
                raise GradcheckError(
                    f"parameter {index}, element {i}: analytic gradient {an!r} "
                    f"vs finite difference {fd!r} (error {error:.3e})"
                )
    return worst
