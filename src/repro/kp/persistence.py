"""H0 persistent homology of weighted graphs (the KP substrate).

Knowledge Persistence (Bastos et al., WWW 2023) summarises a KGC model's
score geometry by the 0-dimensional persistence diagrams of two weighted
graphs built from scored positive and negative triples.  This module
implements the underlying machinery from first principles:

* a sublevel filtration on edge weights — vertices are born when their
  first incident edge appears, components merge as heavier edges arrive;
* union-find with the *elder rule*: when two components merge, the one
  with the younger (larger) birth dies, producing a ``(birth, death)``
  point; the globally oldest component never dies and is recorded with
  ``death = max weight`` (the standard finite truncation for graphs).

The result is an exact H0 persistence diagram in ``O(m log m)`` for ``m``
edges — no external TDA dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PersistenceDiagram:
    """A multiset of (birth, death) points with ``death >= birth``.

    Examples
    --------
    >>> import numpy as np
    >>> diagram = PersistenceDiagram(np.asarray([[0.0, 1.0], [0.5, 0.5]]))
    >>> diagram.num_points
    2
    >>> diagram.persistences().tolist()
    [1.0, 0.0]
    >>> diagram.total_persistence()
    1.0
    """

    points: np.ndarray  # (n, 2) float64

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=np.float64)
        if points.size == 0:
            points = points.reshape(0, 2)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"diagram points must be (n, 2), got {points.shape}")
        if points.size and (points[:, 1] < points[:, 0] - 1e-12).any():
            raise ValueError("every diagram point needs death >= birth")
        object.__setattr__(self, "points", points)

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    def persistences(self) -> np.ndarray:
        """Lifetimes ``death - birth`` of all points."""
        if self.num_points == 0:
            return np.empty(0)
        return self.points[:, 1] - self.points[:, 0]

    def total_persistence(self) -> float:
        return float(self.persistences().sum())

    def __repr__(self) -> str:
        return f"PersistenceDiagram({self.num_points} points)"


class UnionFind:
    """Union-find with birth tracking for the elder rule.

    Examples
    --------
    >>> import numpy as np
    >>> uf = UnionFind(3, births=np.asarray([0.1, 0.2, 0.3]))
    >>> uf.union(0, 1, weight=0.5)  # the younger component (born 0.2) dies
    (0.2, 0.5)
    >>> uf.union(0, 1, weight=0.9) is None  # already connected: a cycle
    True
    """

    def __init__(self, size: int, births: np.ndarray):
        self.parent = np.arange(size, dtype=np.int64)
        self.birth = np.asarray(births, dtype=np.float64).copy()

    def find(self, node: int) -> int:
        root = node
        while self.parent[root] != root:
            root = int(self.parent[root])
        # Path compression.
        while self.parent[node] != root:
            self.parent[node], node = root, int(self.parent[node])
        return root

    def union(self, a: int, b: int, weight: float) -> tuple[float, float] | None:
        """Merge the components of ``a`` and ``b`` at filtration ``weight``.

        Returns the dying ``(birth, death)`` pair, or None if ``a`` and
        ``b`` were already connected (the edge creates a cycle — an H1
        event H0 ignores).
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return None
        # Elder rule: the younger (later-born) component dies.
        if self.birth[root_a] > self.birth[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        return float(self.birth[root_b]), float(weight)


def h0_diagram(
    edges: np.ndarray,
    weights: np.ndarray,
    num_vertices: int | None = None,
) -> PersistenceDiagram:
    """H0 persistence diagram of a weighted (multi)graph.

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer endpoints; directions are ignored (H0 of the
        underlying undirected graph).
    weights:
        ``(m,)`` filtration values — a vertex is born at its lightest
        incident edge, and components merge in weight order.
    num_vertices:
        Total vertex count (isolated vertices produce no points); inferred
        from the edges when omitted.

    The essential class of every connected component is closed at the
    maximum edge weight, so diagrams of finite graphs are finite and
    Wasserstein distances stay well-defined.

    Examples
    --------
    A path ``0 -- 1 -- 2`` whose second edge arrives later: the merge at
    0.3 kills one just-born component, the merge at 0.7 kills the
    late-born vertex 2, and the surviving component closes at the
    maximum weight.

    >>> import numpy as np
    >>> edges = np.asarray([[0, 1], [1, 2]])
    >>> h0_diagram(edges, np.asarray([0.3, 0.7])).points.tolist()
    [[0.3, 0.3], [0.7, 0.7], [0.3, 0.7]]
    """
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if edges.size == 0:
        return PersistenceDiagram(np.empty((0, 2)))
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got {edges.shape}")
    if weights.shape != (edges.shape[0],):
        raise ValueError(
            f"weights must be ({edges.shape[0]},), got {weights.shape}"
        )
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1

    order = np.argsort(weights, kind="stable")
    edges = edges[order]
    weights = weights[order]

    # Vertex births: the weight of the first (lightest) incident edge.
    births = np.full(num_vertices, np.inf)
    for (u, v), w in zip(edges, weights):
        if w < births[u]:
            births[u] = w
        if w < births[v]:
            births[v] = w

    uf = UnionFind(num_vertices, births)
    max_weight = float(weights[-1])
    points: list[tuple[float, float]] = []
    for (u, v), w in zip(edges, weights):
        if u == v:
            continue
        merged = uf.union(int(u), int(v), float(w))
        if merged is not None:
            points.append(merged)

    # Essential classes: surviving component roots die at the max weight.
    touched = np.flatnonzero(np.isfinite(births))
    roots = {uf.find(int(vertex)) for vertex in touched}
    for root in sorted(roots):
        points.append((float(births[root]), max_weight))
    return PersistenceDiagram(np.asarray(points, dtype=np.float64))


def score_graph_diagram(
    triples: np.ndarray,
    scores: np.ndarray,
    num_entities: int,
) -> PersistenceDiagram:
    """Diagram of a KP score graph: entities as vertices, scored triples as edges.

    This is the construction of Bastos et al.: each triple ``(h, r, t)``
    contributes the edge ``h -- t`` weighted by the model's score of the
    triple, and the geometry of the resulting component structure tracks
    how the model separates its score mass.

    Examples
    --------
    >>> import numpy as np
    >>> triples = np.asarray([[0, 0, 1], [1, 0, 2]])
    >>> scores = np.asarray([0.2, 0.9])
    >>> score_graph_diagram(triples, scores, num_entities=3).num_points
    3
    """
    triples = np.asarray(triples, dtype=np.int64)
    if triples.ndim != 2 or triples.shape[1] != 3:
        raise ValueError(f"triples must be (n, 3), got {triples.shape}")
    return h0_diagram(triples[:, [0, 2]], scores, num_vertices=num_entities)
