"""Knowledge Persistence — the proxy metric baseline (Bastos et al., 2023).

KP sidesteps ranking entirely: sample a set of positive triples and a set
of negative (corrupted) triples, score both with the model, build the two
weighted *score graphs* ``KP+`` and ``KP-``, and report the sliced
Wasserstein distance between their H0 persistence diagrams.  A model that
separates positives from negatives produces structurally different score
graphs, so the distance tends to track ranking quality at ``O(|E|)`` cost.

Following the paper's Section 5.2, the negative corruption step accepts
the same three sampling strategies as the rank estimators (R / P / S), so
KP can be boosted with recommender-guided negatives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.ranking import split_triples
from repro.core.sampling import NegativePools
from repro.kg.graph import KnowledgeGraph
from repro.kp.persistence import PersistenceDiagram, score_graph_diagram
from repro.kp.wasserstein import sliced_wasserstein
from repro.models.base import KGEModel


@dataclass
class KPResult:
    """One KP measurement.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.kp.persistence import PersistenceDiagram
    >>> diagram = PersistenceDiagram(np.empty((0, 2)))
    >>> KPResult(value=0.5, seconds=0.1, num_positive=10, num_negative=10,
    ...          positive_diagram=diagram, negative_diagram=diagram)
    KPResult(value=0.5000, n+=10, n-=10)
    """

    value: float
    seconds: float
    num_positive: int
    num_negative: int
    positive_diagram: PersistenceDiagram
    negative_diagram: PersistenceDiagram

    def __repr__(self) -> str:
        return f"KPResult(value={self.value:.4f}, n+={self.num_positive}, n-={self.num_negative})"


def _score_triples(model: KGEModel, triples: np.ndarray) -> np.ndarray:
    """Inference-path scores of an ``(n, 3)`` triple array."""
    scores = np.empty(triples.shape[0])
    for i, (h, r, t) in enumerate(triples):
        scores[i] = model.score_candidates(
            int(h), int(r), "tail", np.asarray([int(t)], dtype=np.int64)
        )[0]
    return scores


def _corrupt(
    triples: np.ndarray,
    pools: NegativePools | None,
    num_entities: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Corrupt each triple's tail (or head, alternating) into a negative.

    With ``pools`` the replacement comes from the triple's relation-side
    pool (the P/S variants); without, it is uniform (the R variant).
    """
    corrupted = triples.copy()
    corrupt_head = rng.random(triples.shape[0]) < 0.5
    for i, (h, r, t) in enumerate(triples):
        side = "head" if corrupt_head[i] else "tail"
        if pools is not None:
            pool = pools.pool(int(r), side)
        else:
            pool = np.empty(0, dtype=np.int64)
        if pool.size:
            replacement = int(pool[rng.integers(pool.size)])
        else:
            replacement = int(rng.integers(num_entities))
        if corrupt_head[i]:
            corrupted[i, 0] = replacement
        else:
            corrupted[i, 2] = replacement
    return corrupted


def knowledge_persistence(
    model: KGEModel,
    graph: KnowledgeGraph,
    split: str = "valid",
    num_triples: int | None = None,
    pools: NegativePools | None = None,
    num_slices: int = 32,
    seed: int = 0,
) -> KPResult:
    """Compute the KP metric of ``model`` on one split.

    Parameters
    ----------
    num_triples:
        Positive sample size (None = the whole split).  KP's cost is
        linear in this.
    pools:
        Negative-candidate pools steering the corruption — None for
        uniform (KP-R), probabilistic pools for KP-P, static for KP-S.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> from repro.models import build_model
    >>> graph = build_graph({
    ...     "train": [("a", "r", "b"), ("b", "r", "c"), ("c", "r", "d")],
    ...     "valid": [("a", "r", "c"), ("b", "r", "d")],
    ... })
    >>> model = build_model("distmult", graph.num_entities,
    ...                     graph.num_relations, dim=4, seed=0)
    >>> result = knowledge_persistence(model, graph, split="valid", seed=0)
    >>> (result.num_positive, result.num_negative)
    (2, 2)
    >>> result.value >= 0.0
    True
    """
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    positives = split_triples(graph, split).array
    if positives.shape[0] == 0:
        raise ValueError(f"split {split!r} has no triples to sample")
    if num_triples is not None and num_triples < positives.shape[0]:
        keep = rng.choice(positives.shape[0], size=num_triples, replace=False)
        positives = positives[keep]
    negatives = _corrupt(positives, pools, graph.num_entities, rng)

    positive_scores = _score_triples(model, positives)
    negative_scores = _score_triples(model, negatives)

    positive_diagram = score_graph_diagram(positives, positive_scores, graph.num_entities)
    negative_diagram = score_graph_diagram(negatives, negative_scores, graph.num_entities)
    value = sliced_wasserstein(positive_diagram, negative_diagram, num_slices=num_slices)
    return KPResult(
        value=value,
        seconds=time.perf_counter() - start,
        num_positive=int(positives.shape[0]),
        num_negative=int(negatives.shape[0]),
        positive_diagram=positive_diagram,
        negative_diagram=negative_diagram,
    )
