"""Knowledge Persistence baseline: persistence diagrams + sliced Wasserstein."""

from repro.kp.metric import KPResult, knowledge_persistence
from repro.kp.persistence import (
    PersistenceDiagram,
    UnionFind,
    h0_diagram,
    score_graph_diagram,
)
from repro.kp.wasserstein import sliced_wasserstein

__all__ = [
    "KPResult",
    "PersistenceDiagram",
    "UnionFind",
    "h0_diagram",
    "knowledge_persistence",
    "score_graph_diagram",
    "sliced_wasserstein",
]
