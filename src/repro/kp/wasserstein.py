"""Sliced Wasserstein distance between persistence diagrams.

KP compares the diagrams of its positive and negative score graphs with
the sliced Wasserstein kernel distance of Carriere et al. (2017): project
both diagrams onto ``num_slices`` directions through the half-plane, pad
each diagram with the *diagonal projections* of the other's points (the
transport target for unmatched points), sort the projections and average
the L1 distances over slices.

The diagonal padding is what makes the distance well-defined between
diagrams of different cardinalities and gives it the metric properties our
property-based tests check (symmetry, identity, triangle-ish behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.kp.persistence import PersistenceDiagram


def _diagonal_projection(points: np.ndarray) -> np.ndarray:
    """Orthogonal projection of diagram points onto the diagonal y = x."""
    if points.size == 0:
        return points.reshape(0, 2)
    mid = (points[:, 0] + points[:, 1]) / 2.0
    return np.stack([mid, mid], axis=1)


def sliced_wasserstein(
    diagram_a: PersistenceDiagram,
    diagram_b: PersistenceDiagram,
    num_slices: int = 32,
) -> float:
    """Sliced 1-Wasserstein distance between two diagrams.

    Deterministic: slice directions are evenly spaced over the half-circle
    rather than sampled, so repeated calls agree exactly.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.kp.persistence import PersistenceDiagram
    >>> persistent = PersistenceDiagram(np.asarray([[0.0, 1.0]]))
    >>> sliced_wasserstein(persistent, persistent)  # identity
    0.0
    >>> empty = PersistenceDiagram(np.empty((0, 2)))
    >>> sliced_wasserstein(persistent, empty) > 0.0
    True
    """
    if num_slices <= 0:
        raise ValueError(f"num_slices must be positive, got {num_slices}")
    a = diagram_a.points
    b = diagram_b.points
    if a.size == 0 and b.size == 0:
        return 0.0
    # Augment each side with the diagonal projections of the other.
    a_full = np.concatenate([a, _diagonal_projection(b)], axis=0)
    b_full = np.concatenate([b, _diagonal_projection(a)], axis=0)
    angles = np.linspace(-np.pi / 2.0, np.pi / 2.0, num_slices, endpoint=False)
    directions = np.stack([np.cos(angles), np.sin(angles)], axis=1)  # (s, 2)
    proj_a = np.sort(a_full @ directions.T, axis=0)  # (n, s)
    proj_b = np.sort(b_full @ directions.T, axis=0)
    return float(np.abs(proj_a - proj_b).sum(axis=0).mean())
