"""Training-study runner: train a model, evaluate every epoch, every way.

One :func:`run_training_study` call produces the raw material for four
paper tables at once: per epoch it records

* the **true** full filtered ranking metrics (the expensive ground truth),
* the **estimated** metrics under Random / Probabilistic / Static pools,
* the **KP** proxy value under the same three negative strategies,

plus the wall-clock cost of each, which is exactly the data behind Tables
6 (MAE), 7/12-14 (correlations), 8 (Kendall-tau across models) and 9/11
(speed-ups).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.candidates import build_static_candidates
from repro.core.ranking import evaluate_full
from repro.core.sampling import STRATEGIES, Strategy, build_pools
from repro.core.estimators import evaluate_sampled
from repro.datasets.zoo import load
from repro.kg.graph import KnowledgeGraph
from repro.kp.metric import knowledge_persistence
from repro.metrics.ranking import RankingMetrics
from repro.models import Trainer, TrainingConfig, build_model
from repro.models.base import KGEModel
from repro.recommenders.registry import build_recommender

if TYPE_CHECKING:
    from repro.store.store import ExperimentStore

#: Loss each model trains best with at small scale (LibKGE-style defaults).
DEFAULT_LOSSES: dict[str, str] = {
    "transe": "margin",
    "rotate": "margin",
    "distmult": "softplus",
    "complex": "softplus",
    "rescal": "softplus",
    "tucker": "bce",
    "conve": "bce",
}


class EarlyStopping:
    """Epoch callback that tracks an estimated metric and flags plateaus.

    The paper's practical promise is exactly this loop: evaluate *fast*
    every epoch and stop training when the estimate stops improving.
    Attach an instance as a trainer callback; it records the per-epoch
    estimates, remembers the best epoch, and sets :attr:`should_stop`
    after ``patience`` epochs without ``min_delta`` improvement.  (The
    trainer itself keeps running — stopping is the caller's decision —
    but the flag and the best-epoch bookmark are what model selection
    needs.)
    """

    def __init__(
        self,
        protocol,
        split: str = "valid",
        metric: str = "mrr",
        patience: int = 3,
        min_delta: float = 1e-4,
    ):
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        self.protocol = protocol
        self.split = split
        self.metric = metric
        self.patience = patience
        self.min_delta = min_delta
        self.history: list[float] = []
        self.best_value = -np.inf
        self.best_epoch = -1
        self.epochs_since_best = 0
        self.should_stop = False

    def __call__(self, epoch: int, model: KGEModel, history) -> None:
        value = self.protocol.evaluate(model, split=self.split).metrics.metric(self.metric)
        self.history.append(value)
        history.attach(f"estimated_{self.metric}", value)
        if value > self.best_value + self.min_delta:
            self.best_value = value
            self.best_epoch = epoch
            self.epochs_since_best = 0
        else:
            self.epochs_since_best += 1
            if self.epochs_since_best >= self.patience:
                self.should_stop = True


@dataclass
class EpochEvaluation:
    """Everything measured after one training epoch."""

    epoch: int
    true_metrics: RankingMetrics
    estimated: dict[Strategy, RankingMetrics]
    kp_values: dict[Strategy, float]
    true_seconds: float
    estimated_seconds: dict[Strategy, float]
    kp_seconds: dict[Strategy, float]

    def speedup(self, strategy: Strategy) -> float:
        """Full-eval time over estimated-eval time (Table 9 entries)."""
        est = self.estimated_seconds[strategy]
        if est <= 0:
            return float("inf")
        return self.true_seconds / est

    def kp_speedup(self, strategy: Strategy) -> float:
        kp = self.kp_seconds[strategy]
        if kp <= 0:
            return float("inf")
        return self.true_seconds / kp


@dataclass
class StudyResult:
    """Per-epoch evaluations of one (dataset, model) training run."""

    dataset_name: str
    model_name: str
    records: list[EpochEvaluation] = field(default_factory=list)

    def series(self, source: str, metric: str = "mrr") -> list[float]:
        """Extract a per-epoch series.

        ``source`` is ``"true"``, one of the strategies (estimated
        metrics), or ``"kp:<strategy>"`` for the proxy values.
        """
        if source == "true":
            return [r.true_metrics.metric(metric) for r in self.records]
        if source.startswith("kp:"):
            strategy = source.split(":", 1)[1]
            return [r.kp_values[strategy] for r in self.records]
        return [r.estimated[source].metric(metric) for r in self.records]

    def mean_speedup(self, strategy: Strategy) -> tuple[float, float]:
        values = np.asarray([r.speedup(strategy) for r in self.records])
        return float(values.mean()), float(values.std())

    def mean_kp_speedup(self, strategy: Strategy) -> tuple[float, float]:
        values = np.asarray([r.kp_speedup(strategy) for r in self.records])
        return float(values.mean()), float(values.std())

    def mean_full_seconds(self) -> tuple[float, float]:
        values = np.asarray([r.true_seconds for r in self.records])
        return float(values.mean()), float(values.std())


def _prepare_pools(
    graph: KnowledgeGraph,
    types,
    recommender: str,
    sample_fraction: float,
    seed: int,
    store: "ExperimentStore | None" = None,
):
    """Fit the recommender once and draw one pool set per strategy.

    With a store, previously drawn pools are reloaded; the draws share one
    RNG across strategies, so the cache is used only when *all* strategies
    hit (a partial rebuild would shift the random stream).
    """
    keys: dict[Strategy, str] = {}
    if store is not None:
        from repro.store.keys import pools_key

        keys = {
            strategy: pools_key(graph, recommender, strategy, sample_fraction, seed)
            for strategy in STRATEGIES
        }
        cached = {
            strategy: store.artifacts.get_pools(key) for strategy, key in keys.items()
        }
        if all(pools is not None for pools in cached.values()):
            return cached
    fitted = build_recommender(recommender).fit(graph, types)
    candidates = build_static_candidates(fitted, graph)
    rng = np.random.default_rng(seed)
    pools_by_strategy = {
        strategy: build_pools(
            graph,
            strategy,
            rng=rng,
            sample_fraction=sample_fraction,
            fitted=fitted,
            candidates=candidates,
        )
        for strategy in STRATEGIES
    }
    if store is not None:
        for strategy, pools in pools_by_strategy.items():
            store.artifacts.put_pools(
                keys[strategy],
                pools,
                labels={"graph": graph.name, "recommender": recommender},
            )
    return pools_by_strategy


def evaluate_epoch(
    model: KGEModel,
    graph: KnowledgeGraph,
    pools_by_strategy,
    epoch: int,
    split: str = "valid",
    kp_triples: int | None = 200,
    kp_seed: int = 0,
    with_kp: bool = True,
    store: "ExperimentStore | None" = None,
    workers: int = 1,
) -> EpochEvaluation:
    """Run the full + estimated + KP measurements for one model state.

    With a store, the expensive full evaluation goes through the
    ground-truth cache (keyed by the model's exact parameters), so e.g.
    extending a study by more epochs only pays for the new epochs.
    ``workers`` fans the full and sampled rankings across that many
    scoring processes (the metrics are identical at any worker count).
    """
    if store is not None:
        full = store.cached_evaluate_full(model, graph, split=split, workers=workers)
    else:
        full = evaluate_full(model, graph, split=split, workers=workers)
    estimated: dict[Strategy, RankingMetrics] = {}
    estimated_seconds: dict[Strategy, float] = {}
    kp_values: dict[Strategy, float] = {}
    kp_seconds: dict[Strategy, float] = {}
    for strategy in STRATEGIES:
        result = evaluate_sampled(
            model, graph, pools_by_strategy[strategy], split=split, workers=workers
        )
        estimated[strategy] = result.metrics
        estimated_seconds[strategy] = result.seconds
        if with_kp:
            pools = None if strategy == "random" else pools_by_strategy[strategy]
            kp = knowledge_persistence(
                model,
                graph,
                split=split,
                num_triples=kp_triples,
                pools=pools,
                seed=kp_seed + epoch,
            )
            kp_values[strategy] = kp.value
            kp_seconds[strategy] = kp.seconds
        else:
            kp_values[strategy] = float("nan")
            kp_seconds[strategy] = float("nan")
    return EpochEvaluation(
        epoch=epoch,
        true_metrics=full.metrics,
        estimated=estimated,
        kp_values=kp_values,
        kp_seconds=kp_seconds,
        true_seconds=full.seconds,
        estimated_seconds=estimated_seconds,
    )


def run_training_study(
    dataset_name: str,
    model_name: str,
    epochs: int = 10,
    dim: int = 24,
    sample_fraction: float = 0.1,
    recommender: str = "l-wd",
    split: str = "valid",
    seed: int = 0,
    with_kp: bool = True,
    kp_triples: int | None = 200,
    lr: float = 0.05,
    store: "ExperimentStore | None" = None,
    workers: int = 1,
) -> StudyResult:
    """Train one model on one zoo dataset, evaluating every epoch.

    The loss follows :data:`DEFAULT_LOSSES`; pools are drawn once before
    training (the framework's once-per-dataset cost) and reused at every
    epoch, exactly as the paper's protocol prescribes.  ``workers`` fans
    every per-epoch ranking pass across that many scoring processes
    (``workers`` is an execution knob, not provenance: it is excluded
    from the study cache key because results are identical at any count).

    With a ``store``, a completed study of the identical configuration is
    returned straight from the artifact cache — zero trainer epochs, zero
    full-ranking recomputation — and every run (hit or miss) is recorded
    in the store's journal.  On a miss the trained checkpoint, the pools
    and every per-epoch ground truth are persisted, so later studies that
    share any of those artifacts start warm.
    """
    study_config = {
        "dataset": dataset_name,
        "model": model_name,
        "epochs": epochs,
        "dim": dim,
        "sample_fraction": sample_fraction,
        "recommender": recommender,
        "split": split,
        "seed": seed,
        "with_kp": with_kp,
        "kp_triples": kp_triples,
        "lr": lr,
    }
    wall_start = time.perf_counter()
    dataset = load(dataset_name)
    graph = dataset.graph
    key = None
    if store is not None:
        from repro.store.keys import study_key
        from repro.store.serializers import study_from_dict

        # The key covers the graph *content*, not just the zoo name, so
        # the dataset must be materialised even on the warm path.
        key = study_key(graph, **study_config)
        cached = store.artifacts.get_json("study", key)
        if cached is not None:
            study = study_from_dict(cached)
            store.journal.append(
                "training_study",
                config=study_config,
                seconds=time.perf_counter() - wall_start,
                metrics=_study_summary(study),
                cache_hit=True,
            )
            return study

    # Warm the filtered-ranking index outside every timed region, so the
    # per-epoch full/estimated timings never absorb this one-off build
    # (on a warm store the first timed call could otherwise be sampled
    # evaluation, inflating the speed-up denominators).
    graph.filter_index  # noqa: B018 — deliberate cache warm-up
    model = build_model(
        model_name, graph.num_entities, graph.num_relations, dim=dim, seed=seed
    )
    pools = _prepare_pools(
        graph, dataset.types, recommender, sample_fraction, seed=seed, store=store
    )
    study = StudyResult(dataset_name=dataset_name, model_name=model_name)

    def on_epoch(epoch: int, current_model: KGEModel, history) -> None:
        del history
        study.records.append(
            evaluate_epoch(
                current_model,
                graph,
                pools,
                epoch=epoch,
                split=split,
                kp_triples=kp_triples,
                kp_seed=seed,
                with_kp=with_kp,
                store=store,
                workers=workers,
            )
        )

    config = TrainingConfig(
        epochs=epochs,
        loss=DEFAULT_LOSSES.get(model_name, "softplus"),
        lr=lr,
        seed=seed,
    )
    Trainer(config).fit(model, graph, callbacks=[on_epoch])

    if store is not None and key is not None:
        from repro.store.serializers import study_to_dict

        labels = {"dataset": dataset_name, "model": model_name}
        store.artifacts.put_json("study", key, study_to_dict(study), labels=labels)
        store.artifacts.put_model(key, model, labels=labels)
        store.journal.append(
            "training_study",
            config=study_config,
            seconds=time.perf_counter() - wall_start,
            metrics=_study_summary(study),
            cache_hit=False,
        )
    return study


def _study_summary(study: StudyResult) -> dict[str, float]:
    """Journal-friendly metric summary: the final epoch's true metrics."""
    if not study.records:
        return {}
    final = study.records[-1].true_metrics
    return {
        "mrr": final.mrr,
        "hits@10": final.hits_at(10),
        "epochs": float(len(study.records)),
    }


def stamp_bench_record(
    payload: dict, config: dict | None = None
) -> dict:
    """Stamp a ``BENCH_*.json`` payload with its schema + provenance.

    Adds ``schema_version``, a wall-clock ``timestamp`` and — when the
    bench passes its configuration — a ``config_fingerprint`` hash, so
    committed records are self-describing and ``repro bench trend`` /
    ``gate`` can tell comparable records from config drift.  Returns a
    new dict; the caller's payload is not mutated.
    """
    from repro.obs.bench import BENCH_SCHEMA_VERSION, config_fingerprint

    stamped = dict(payload)
    stamped["schema_version"] = BENCH_SCHEMA_VERSION
    stamped["timestamp"] = time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.localtime()
    )
    if config is not None:
        stamped["config_fingerprint"] = config_fingerprint(config)
    return stamped
