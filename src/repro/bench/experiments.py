"""One driver per paper table and figure (the experiment index of DESIGN.md).

Each function returns printable rows (list-of-dicts for tables, series
mappings for figures); the ``benchmarks/`` targets time the drivers and
print their output, and ``EXPERIMENTS.md`` records paper-vs-measured.

Model choices per experiment follow the cost/fidelity trade-off the
drivers document inline: accuracy-shaped experiments (estimator bias,
MAPE sweeps) use :class:`~repro.models.oracle.OracleModel`, whose true
metrics are controllable without training; timing-shaped experiments
(speed-ups, time-vs-samples) use a real factorisation model whose
``score_candidates`` cost is genuinely proportional to the candidate
count; correlation experiments train real models via
:func:`~repro.bench.runner.run_training_study`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.bench.runner import StudyResult

if TYPE_CHECKING:
    from repro.experiment.runner import ExperimentResult
from repro.core.candidates import build_static_candidates, evaluate_tradeoff
from repro.core.easy_negatives import EasyNegativeReport, mine_easy_negatives
from repro.core.complexity import sampling_complexity
from repro.core.estimators import evaluate_sampled
from repro.core.ranking import evaluate_full
from repro.core.sampling import STRATEGIES, Strategy, build_pools
from repro.datasets.zoo import available_datasets, load
from repro.kg.stats import dataset_statistics
from repro.metrics.agreement import (
    IntervalEstimate,
    kendall_tau,
    mae,
    mean_confidence_interval,
    pearson,
)
from repro.models import build_model
from repro.models.oracle import OracleModel
from repro.recommenders.registry import available_recommenders, build_recommender

DEFAULT_TABLE2_DATASETS = ("fb15k237-lite", "yago310-lite", "wikikg2-lite")
DEFAULT_TABLE3_DATASETS = ("yago310-lite", "codex-l-lite", "wikikg2-lite")
DEFAULT_TABLE5_DATASETS = ("fb15k237-lite", "yago310-lite", "wikikg2-lite")


# ----------------------------------------------------------------------
# Table 2 + Table 10: easy negatives and the false-negative audit
# ----------------------------------------------------------------------
def table2_easy_negatives(
    dataset_names: tuple[str, ...] = DEFAULT_TABLE2_DATASETS,
    recommender: str = "l-wd",
) -> tuple[list[dict], list[EasyNegativeReport]]:
    """Mine zero-score slots with L-WD on each dataset (Table 2).

    Returns the printable rows and the full reports, whose false-negative
    lists are the Table 10 audit.
    """
    rows: list[dict] = []
    reports: list[EasyNegativeReport] = []
    for name in dataset_names:
        dataset = load(name)
        fitted = build_recommender(recommender).fit(dataset.graph, dataset.types)
        report = mine_easy_negatives(fitted, dataset.graph)
        reports.append(report)
        rows.append(report.as_row())
    return rows, reports


def table10_false_negative_audit(
    reports: list[EasyNegativeReport],
) -> list[dict]:
    """Expand the Table 10 rows: every false easy negative, labelled."""
    rows: list[dict] = []
    for report in reports:
        dataset = load(report.dataset_name)
        for false_negative in report.false_easy_negatives:
            head, relation, tail = false_negative.labelled(dataset.graph)
            rows.append(
                {
                    "Dataset": report.dataset_name,
                    "Head": head,
                    "Relation": relation,
                    "Tail": tail,
                    "Split": false_negative.split,
                    "Zero side": false_negative.zero_side,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table 3: sampling complexity
# ----------------------------------------------------------------------
def table3_sampling_complexity(
    dataset_names: tuple[str, ...] = DEFAULT_TABLE3_DATASETS,
    sample_fraction: float = 0.025,
) -> list[dict]:
    """Entity-aware vs relational sampling cost at 2.5% (Table 3)."""
    return [
        sampling_complexity(load(name).graph, sample_fraction).as_row()
        for name in dataset_names
    ]


# ----------------------------------------------------------------------
# Table 4: dataset statistics
# ----------------------------------------------------------------------
def table4_dataset_statistics(
    dataset_names: tuple[str, ...] | None = None,
) -> list[dict]:
    """The Table 4 row of every zoo dataset."""
    names = dataset_names or tuple(available_datasets())
    rows = []
    for name in names:
        dataset = load(name)
        rows.append(dataset_statistics(dataset.graph, dataset.types).as_row())
    return rows


# ----------------------------------------------------------------------
# Table 5: recommender CR / RR / runtime
# ----------------------------------------------------------------------
def table5_recommenders(
    dataset_names: tuple[str, ...] = DEFAULT_TABLE5_DATASETS,
    recommender_names: tuple[str, ...] | None = None,
) -> list[dict]:
    """Candidate Recall (Test/Unseen), RR and fit runtime per recommender."""
    names = recommender_names or tuple(available_recommenders())
    rows: list[dict] = []
    for dataset_name in dataset_names:
        dataset = load(dataset_name)
        for rec_name in names:
            fitted = build_recommender(rec_name).fit(dataset.graph, dataset.types)
            sets = build_static_candidates(fitted, dataset.graph)
            report = evaluate_tradeoff(
                sets, dataset.graph, fit_seconds=fitted.fit_seconds
            )
            row = {"Dataset": dataset_name, **report.as_row()}
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Spec-driven runs: the evaluation comparison table
# ----------------------------------------------------------------------
def evaluation_comparison_rows(result: "ExperimentResult") -> list[dict]:
    """Full vs random vs guided rows of one spec run (the CLI's table).

    Shared by ``repro evaluate``, ``repro run`` and notebooks consuming
    :class:`~repro.experiment.ExperimentResult` directly.
    """
    evaluation = result.spec.evaluation
    size = (
        f"{evaluation.sample_fraction:.0%}"
        if evaluation.sample_fraction is not None
        else f"n={evaluation.num_samples}"
    )

    def _row(protocol: str, outcome) -> dict:
        return {
            "Protocol": protocol,
            "MRR": outcome.metrics.mrr,
            "Hits@10": outcome.metrics.hits_at(10),
            "Seconds": outcome.seconds,
            "Scores": outcome.num_scored,
        }

    rows: list[dict] = []
    if result.truth is not None:
        rows.append(_row("full filtered ranking", result.truth))
    if result.random_estimate is not None:
        rows.append(_row(f"random @ {size}", result.random_estimate))
    if result.guided_estimate is not None:
        rows.append(
            _row(
                f"{evaluation.strategy} ({evaluation.recommender}) @ {size}",
                result.guided_estimate,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Tables 6-9 consume training studies from repro.bench.runner
# ----------------------------------------------------------------------
def table6_mae(studies: list[StudyResult], metric: str = "mrr") -> list[dict]:
    """MAE of estimating the true metric per strategy (Tables 6 / 15)."""
    rows: list[dict] = []
    for study in studies:
        truth = study.series("true", metric)
        row: dict = {"Dataset": study.dataset_name, "Model": study.model_name}
        for strategy in STRATEGIES:
            label = {"random": "R", "probabilistic": "P", "static": "S"}[strategy]
            row[label] = round(mae(study.series(strategy, metric), truth), 3)
        rows.append(row)
    return rows


def table7_correlation(studies: list[StudyResult], metric: str = "mrr") -> list[dict]:
    """Pearson correlation of KP and rank estimates with the true metric
    across training epochs (Tables 7 / 12 / 13 / 14)."""
    rows: list[dict] = []
    for study in studies:
        truth = study.series("true", metric)
        row: dict = {"Dataset": study.dataset_name, "Model": study.model_name}
        for strategy in STRATEGIES:
            label = {"random": "R", "probabilistic": "P", "static": "S"}[strategy]
            row[f"KP {label}"] = round(pearson(study.series(f"kp:{strategy}"), truth), 3)
        for strategy in STRATEGIES:
            label = {"random": "R", "probabilistic": "P", "static": "S"}[strategy]
            row[f"Rank {label}"] = round(
                pearson(study.series(strategy, metric), truth), 3
            )
        rows.append(row)
    return rows


def table8_kendall(
    studies: list[StudyResult], metric: str = "mrr"
) -> list[dict]:
    """Average per-epoch Kendall-tau of the *model ordering* (Table 8).

    All studies must share the dataset and epoch count; at every epoch the
    models are ranked by each estimator and by the truth, and the taus are
    averaged over epochs.
    """
    if len(studies) < 2:
        raise ValueError("Kendall-tau needs at least two models to order")
    datasets = {study.dataset_name for study in studies}
    if len(datasets) != 1:
        raise ValueError(f"studies span several datasets: {sorted(datasets)}")
    num_epochs = min(len(study.records) for study in studies)
    sources: dict[str, str] = {
        "KP R": "kp:random",
        "KP P": "kp:probabilistic",
        "KP S": "kp:static",
        "Rank R": "random",
        "Rank P": "probabilistic",
        "Rank S": "static",
    }
    row: dict = {"Dataset": studies[0].dataset_name, "Models": len(studies)}
    for label, source in sources.items():
        taus = []
        for epoch in range(num_epochs):
            truth_order = [study.series("true", metric)[epoch] for study in studies]
            estimate_order = [
                study.series(source, metric if not source.startswith("kp:") else "mrr")[epoch]
                for study in studies
            ]
            taus.append(kendall_tau(estimate_order, truth_order))
        row[label] = round(float(np.mean(taus)), 3)
    return [row]


def table9_speedup(studies: list[StudyResult]) -> list[dict]:
    """Average evaluation speed-up vs the full ranking (Tables 9 / 11)."""
    rows: list[dict] = []
    for study in studies:
        full_mean, full_std = study.mean_full_seconds()
        row: dict = {
            "Dataset": study.dataset_name,
            "Model": study.model_name,
            "Full eval (s)": f"{full_mean:.2f} ± {full_std:.2f}",
        }
        for strategy in STRATEGIES:
            label = {"random": "R", "probabilistic": "P", "static": "S"}[strategy]
            mean, std = study.mean_speedup(strategy)
            row[f"Rank {label} (x)"] = f"{mean:.1f} ± {std:.1f}"
            kp_mean, kp_std = study.mean_kp_speedup(strategy)
            if np.isfinite(kp_mean):
                row[f"KP {label} (x)"] = f"{kp_mean:.1f} ± {kp_std:.1f}"
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 3a: evaluation time vs sample size
# ----------------------------------------------------------------------
@dataclass
class TimeSweepResult:
    """Series behind Figure 3a."""

    fractions: list[float]
    seconds_by_strategy: dict[Strategy, list[float]]
    full_seconds: float


def fig3a_time_vs_samples(
    dataset_name: str = "wikikg2-lite",
    fractions: tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4),
    dim: int = 32,
    seed: int = 0,
) -> TimeSweepResult:
    """Wall-clock sampled-eval time per strategy vs the full evaluation.

    Uses an (untrained) ComplEx model: evaluation cost depends only on the
    scoring shape, not on the parameter values.
    """
    dataset = load(dataset_name)
    graph = dataset.graph
    model = build_model("complex", graph.num_entities, graph.num_relations, dim=dim)
    fitted = build_recommender("l-wd").fit(graph, dataset.types)
    candidates = build_static_candidates(fitted, graph)
    rng = np.random.default_rng(seed)
    seconds: dict[Strategy, list[float]] = {s: [] for s in STRATEGIES}
    for fraction in fractions:
        for strategy in STRATEGIES:
            pools = build_pools(
                graph,
                strategy,
                rng=rng,
                sample_fraction=fraction,
                fitted=fitted,
                candidates=candidates,
            )
            result = evaluate_sampled(model, graph, pools, split="test")
            seconds[strategy].append(result.seconds)
    full = evaluate_full(model, graph, split="test")
    return TimeSweepResult(
        fractions=list(fractions),
        seconds_by_strategy=seconds,
        full_seconds=full.seconds,
    )


# ----------------------------------------------------------------------
# Figure 3b / Figure 6: estimated metric vs sample size
# ----------------------------------------------------------------------
@dataclass
class MetricSweepResult:
    """Series behind Figures 3b and 6."""

    fractions: list[float]
    estimates_by_strategy: dict[Strategy, list[float]]
    true_value: float
    metric: str


def fig3b_metric_vs_samples(
    dataset_name: str = "wikikg2-lite",
    fractions: tuple[float, ...] = (0.01, 0.025, 0.05, 0.1, 0.15, 0.2),
    metric: str = "mrr",
    skill: float = 2.0,
    seed: int = 0,
) -> MetricSweepResult:
    """Estimated metric per strategy as the sample grows (Figure 3b / 6).

    Uses the oracle model so the true metric is in the paper's typical
    range without training; the estimator bias being measured is purely a
    property of the sampling, not of the model family.
    """
    dataset = load(dataset_name)
    graph = dataset.graph
    model = OracleModel(graph, skill=skill, seed=seed)
    fitted = build_recommender("l-wd").fit(graph, dataset.types)
    candidates = build_static_candidates(fitted, graph)
    rng = np.random.default_rng(seed)
    estimates: dict[Strategy, list[float]] = {s: [] for s in STRATEGIES}
    for fraction in fractions:
        for strategy in STRATEGIES:
            pools = build_pools(
                graph,
                strategy,
                rng=rng,
                sample_fraction=fraction,
                fitted=fitted,
                candidates=candidates,
            )
            result = evaluate_sampled(model, graph, pools, split="test")
            estimates[strategy].append(result.metrics.metric(metric))
    true_value = evaluate_full(model, graph, split="test").metrics.metric(metric)
    return MetricSweepResult(
        fractions=list(fractions),
        estimates_by_strategy=estimates,
        true_value=true_value,
        metric=metric,
    )


# ----------------------------------------------------------------------
# Figure 3c: estimated validation MRR across training
# ----------------------------------------------------------------------
def fig3c_training_curve(study: StudyResult, metric: str = "mrr") -> dict[str, list[float]]:
    """Per-epoch estimated and true series of one training study."""
    series = {"True": study.series("true", metric)}
    for strategy in STRATEGIES:
        label = {"random": "Random", "probabilistic": "Probabilistic", "static": "Static"}[
            strategy
        ]
        series[label] = study.series(strategy, metric)
    return series


# ----------------------------------------------------------------------
# Figures 4 / 5: MAPE vs sample size per recommender
# ----------------------------------------------------------------------
@dataclass
class MapeSweepResult:
    """Series behind Figures 4 and 5: MAPE with CIs per recommender."""

    dataset_name: str
    fractions: list[float]
    mape_by_recommender: dict[str, list[IntervalEstimate]]
    true_value: float


def fig4_mape_sweep(
    dataset_name: str,
    recommender_names: tuple[str, ...] | None = None,
    fractions: tuple[float, ...] = (0.01, 0.05, 0.1, 0.2, 0.3),
    repeats: int = 5,
    metric: str = "mrr",
    skill: float = 2.0,
    seed: int = 0,
) -> MapeSweepResult:
    """MAPE of the estimated metric vs sample size, per recommender.

    Five repeated samplings per point, pooling the probabilistic and
    static strategies as the paper does; the CI half-widths are the shaded
    bands of Figure 4.
    """
    dataset = load(dataset_name)
    graph = dataset.graph
    model = OracleModel(graph, skill=skill, seed=seed)
    true_value = evaluate_full(model, graph, split="test").metrics.metric(metric)
    names = recommender_names or tuple(available_recommenders())
    mape_by_recommender: dict[str, list[IntervalEstimate]] = {}
    for rec_name in names:
        fitted = build_recommender(rec_name).fit(graph, dataset.types)
        candidates = build_static_candidates(fitted, graph)
        curve: list[IntervalEstimate] = []
        for fraction in fractions:
            errors: list[float] = []
            for repeat in range(repeats):
                rng = np.random.default_rng(seed + 1000 * repeat)
                for strategy in ("probabilistic", "static"):
                    pools = build_pools(
                        graph,
                        strategy,  # type: ignore[arg-type]
                        rng=rng,
                        sample_fraction=fraction,
                        fitted=fitted,
                        candidates=candidates,
                    )
                    estimate = evaluate_sampled(
                        model, graph, pools, split="test"
                    ).metrics.metric(metric)
                    if true_value != 0:
                        errors.append(abs(estimate - true_value) / true_value * 100.0)
            curve.append(mean_confidence_interval(errors))
        mape_by_recommender[rec_name] = curve
    return MapeSweepResult(
        dataset_name=dataset_name,
        fractions=list(fractions),
        mape_by_recommender=mape_by_recommender,
        true_value=true_value,
    )
