"""Ablations of the framework's design choices (DESIGN.md §4 call-outs).

Three decisions the paper motivates but does not isolate get their own
experiments here:

* **Type quality** (paper §4.1: "types are often incomplete and noisy") —
  degrade the type store and watch the typed recommenders' candidate
  recall fall while the structure-only L-WD is untouched;
* **PT union** (paper §5.1: "we include the already seen entities ...
  combining PT with each method") — build static candidate sets with and
  without folding the observed entities in;
* **Training negatives** (paper §7 future work) — train the same model
  with uniform vs recommender-guided corruption and compare the final
  true ranking metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import build_static_candidates, evaluate_tradeoff
from repro.core.ranking import evaluate_full
from repro.datasets.zoo import load
from repro.models import (
    RecommenderNegativeSampler,
    Trainer,
    TrainingConfig,
    build_model,
)
from repro.recommenders.registry import build_recommender


# ----------------------------------------------------------------------
# Ablation A: type quality
# ----------------------------------------------------------------------
def ablation_type_quality(
    dataset_name: str = "codex-m-lite",
    recommender_names: tuple[str, ...] = ("dbh-t", "ontosim", "l-wd-t", "l-wd"),
    drop_fractions: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9),
    corrupt_fraction: float = 0.1,
    seed: int = 0,
) -> list[dict]:
    """CR Test of typed vs type-free recommenders under degraded types.

    Every row is one (recommender, drop fraction) cell; on top of the
    dropped assignments a constant ``corrupt_fraction`` of the surviving
    types is swapped for a wrong one, mimicking real ``instanceOf`` data.
    """
    dataset = load(dataset_name)
    graph = dataset.graph
    rows: list[dict] = []
    for drop in drop_fractions:
        rng = np.random.default_rng(seed)
        degraded = dataset.types.drop_fraction(drop, rng)
        if corrupt_fraction > 0:
            degraded = degraded.corrupt_fraction(corrupt_fraction, rng)
        for name in recommender_names:
            fitted = build_recommender(name).fit(graph, degraded)
            sets = build_static_candidates(fitted, graph)
            report = evaluate_tradeoff(sets, graph, fit_seconds=fitted.fit_seconds)
            rows.append(
                {
                    "Types dropped": f"{drop:.0%}",
                    "Model": name,
                    "CR Test": round(report.candidate_recall_test, 3),
                    "CR Unseen": round(report.candidate_recall_unseen, 3),
                    "RR": round(report.reduction_rate, 3),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Ablation B: folding observed (PT) entities into static sets
# ----------------------------------------------------------------------
def ablation_include_observed(
    dataset_name: str = "codex-m-lite",
    recommender_name: str = "l-wd",
) -> list[dict]:
    """Static candidate sets with vs without the PT union."""
    dataset = load(dataset_name)
    graph = dataset.graph
    fitted = build_recommender(recommender_name).fit(graph, dataset.types)
    rows: list[dict] = []
    for include in (True, False):
        sets = build_static_candidates(fitted, graph, include_observed=include)
        report = evaluate_tradeoff(sets, graph)
        rows.append(
            {
                "PT union": "yes" if include else "no",
                "CR Test": round(report.candidate_recall_test, 3),
                "CR Unseen": round(report.candidate_recall_unseen, 3),
                "RR": round(report.reduction_rate, 3),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablation C: recommender-guided training negatives (paper §7)
# ----------------------------------------------------------------------
@dataclass
class GuidedTrainingResult:
    """Final true metrics per training-negative configuration."""

    rows: list[dict]
    mrr_by_label: dict[str, float]


def ablation_training_negatives(
    dataset_name: str = "codex-s-lite",
    model_name: str = "complex",
    epochs: int = 8,
    dim: int = 24,
    seed: int = 0,
) -> GuidedTrainingResult:
    """Train the same model under four corruption schemes and compare.

    Configurations: uniform (baseline), type-constrained "support" mode at
    two uniform mixes (Krompass-style), and score-proportional mode (the
    untested §7 conjecture).  On this substrate the guided schemes *hurt*
    — the true answers are concentrated on exactly the credible entities
    the guided samplers demote — with a clean monotone structure:
    proportional < support, and more uniform mixing recovers.  The paper
    only conjectures the proportional variant; this is the measurement.
    """
    dataset = load(dataset_name)
    graph = dataset.graph
    fitted = build_recommender("l-wd").fit(graph)
    config = TrainingConfig(epochs=epochs, lr=0.05, loss="softplus", seed=seed)
    configurations = (
        ("uniform", None),
        (
            "support, mix 0.5",
            RecommenderNegativeSampler(
                fitted, graph.num_relations, uniform_mix=0.5, mode="support"
            ),
        ),
        (
            "support, mix 0.2",
            RecommenderNegativeSampler(
                fitted, graph.num_relations, uniform_mix=0.2, mode="support"
            ),
        ),
        (
            "proportional, mix 0.2",
            RecommenderNegativeSampler(
                fitted, graph.num_relations, uniform_mix=0.2, mode="proportional"
            ),
        ),
    )
    rows: list[dict] = []
    mrr_by_label: dict[str, float] = {}
    for label, sampler in configurations:
        model = build_model(model_name, graph.num_entities, graph.num_relations, dim=dim, seed=seed)
        Trainer(config, sampler=sampler).fit(model, graph)
        metrics = evaluate_full(model, graph, split="test").metrics
        mrr_by_label[label] = metrics.mrr
        rows.append(
            {
                "Negatives": label,
                "MRR": round(metrics.mrr, 3),
                "Hits@1": round(metrics.hits_at(1), 3),
                "Hits@10": round(metrics.hits_at(10), 3),
            }
        )
    return GuidedTrainingResult(rows=rows, mrr_by_label=mrr_by_label)
