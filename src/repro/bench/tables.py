"""Fixed-width plain-text table rendering for experiment reports.

Every bench target prints its paper table through :func:`render_table`, so
outputs are alignable with the paper's rows by eye and greppable by the
reproduction log in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

Cell = str | int | float


def format_cell(value: Cell, float_digits: int = 3) -> str:
    """Render one cell: floats to fixed digits, everything else via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render dict rows as a fixed-width table.

    ``columns`` fixes the column order; by default the first row's key
    order is used and missing cells render empty.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_cell(row.get(col, ""), float_digits) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def render_series(
    xs: Iterable[float],
    series: Mapping[str, Iterable[float]],
    x_label: str = "x",
    title: str | None = None,
    float_digits: int = 4,
) -> str:
    """Render figure data as a table with one column per series.

    Figures in the paper become printable series: the x sweep in the first
    column and each strategy/recommender curve in its own column.
    """
    names = list(series.keys())
    columns = [x_label, *names]
    materialised = {name: list(values) for name, values in series.items()}
    rows = []
    for i, x in enumerate(xs):
        row: dict[str, Cell] = {x_label: format_cell(x, float_digits)}
        for name in names:
            values = materialised[name]
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return render_table(rows, columns=columns, title=title, float_digits=float_digits)
