"""Experiment drivers and reporting shared by ``benchmarks/`` and examples."""

from repro.bench.experiments import (
    MapeSweepResult,
    MetricSweepResult,
    TimeSweepResult,
    fig3a_time_vs_samples,
    fig3b_metric_vs_samples,
    fig3c_training_curve,
    fig4_mape_sweep,
    table2_easy_negatives,
    table3_sampling_complexity,
    table4_dataset_statistics,
    table5_recommenders,
    table6_mae,
    table7_correlation,
    table8_kendall,
    table9_speedup,
    table10_false_negative_audit,
)
from repro.bench.ablations import (
    ablation_include_observed,
    ablation_training_negatives,
    ablation_type_quality,
)
from repro.bench.runner import (
    DEFAULT_LOSSES,
    EarlyStopping,
    EpochEvaluation,
    StudyResult,
    evaluate_epoch,
    run_training_study,
    stamp_bench_record,
)
from repro.bench.scorers import LatencyBoundScorer
from repro.bench.tables import render_series, render_table

__all__ = [
    "DEFAULT_LOSSES",
    "EarlyStopping",
    "EpochEvaluation",
    "LatencyBoundScorer",
    "ablation_include_observed",
    "ablation_training_negatives",
    "ablation_type_quality",
    "MapeSweepResult",
    "MetricSweepResult",
    "StudyResult",
    "TimeSweepResult",
    "evaluate_epoch",
    "fig3a_time_vs_samples",
    "fig3b_metric_vs_samples",
    "fig3c_training_curve",
    "fig4_mape_sweep",
    "render_series",
    "render_table",
    "run_training_study",
    "stamp_bench_record",
    "table10_false_negative_audit",
    "table2_easy_negatives",
    "table3_sampling_complexity",
    "table4_dataset_statistics",
    "table5_recommenders",
    "table6_mae",
    "table7_correlation",
    "table8_kendall",
    "table9_speedup",
]
