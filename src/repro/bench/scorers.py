"""Instrumented scorer wrappers shared by the systems benchmarks.

The parallel-engine and serving benchmarks both need a scoring backend
whose *per-call* latency dominates its per-row cost — the regime where
fanning chunks across workers (engine) or coalescing requests into
micro-batches (serve) pays.  :class:`LatencyBoundScorer` pins that
per-call cost to a fixed, hardware-independent floor, so the asserted
speed-up ratios measure the machinery under test rather than how many
idle cores the host happens to have.
"""

from __future__ import annotations

import time


class LatencyBoundScorer:
    """A model wrapper with a fixed sleep per batched scoring call.

    Delegates every computation to the wrapped model — scores, and hence
    ranks, are exactly the wrapped model's — but sleeps ``delay``
    seconds per :meth:`score_candidates_batch` call, emulating a backend
    where batch latency (huge score slabs, accelerator or remote
    round-trips) dominates.
    """

    def __init__(self, inner, delay: float):
        self.inner = inner
        self.delay = delay
        self.num_entities = inner.num_entities
        self.num_relations = inner.num_relations

    def score_candidates_batch(self, anchors, relation, side, candidates=None):
        time.sleep(self.delay)
        return self.inner.score_candidates_batch(anchors, relation, side, candidates)

    def score_candidates(self, anchor, relation, side, candidates):
        return self.inner.score_candidates(anchor, relation, side, candidates)

    def score_all(self, anchor, relation, side):
        return self.inner.score_all(anchor, relation, side)
