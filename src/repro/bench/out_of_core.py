"""Out-of-core benchmark driver: flat-RSS evaluation at million-entity scale.

Runnable as ``python -m repro.bench.out_of_core``.  Each stage is a
subcommand that prints one JSON result line (including its own peak RSS
from ``resource.getrusage``), and ``all`` chains the stages **as separate
subprocesses** so every stage's peak RSS is measured in isolation — a
parent that generated 1.5M triples would otherwise pollute the evaluation
stage's high-water mark.

Stages::

    generate   stream synthetic TSV splits to disk (datasets/scale.py)
    ingest     stream the TSVs into a compact int32 store (datasets/ingest.py)
    shard      initialise an mmap model directory without building the model
    evaluate   sampled evaluation with the mmap backend; asserts an RSS ceiling
    compare    mmap vs in-memory throughput + rank equality at a smaller scale
    all        run every stage and print the combined record

``benchmarks/bench_out_of_core.py`` wraps ``all`` under pytest and emits
``BENCH_out_of_core.json`` for the bench gate.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Default scale of the headline run (>= 1M entities per the bench contract).
DEFAULT_ENTITIES = 1_000_000
DEFAULT_RELATIONS = 50
DEFAULT_TRAIN = 1_500_000
DEFAULT_EVAL = 5_000

#: Peak-RSS ceiling for the million-entity sampled evaluation stage.  An
#: in-memory run at the same scale needs the full dict filter index plus a
#: materialised embedding table — well over a gigabyte — so a flat mmap
#: path clears this with headroom while a regression to materialisation
#: cannot.
DEFAULT_CEILING_MB = 700.0

#: Compare-stage floor: mmap throughput within 2x of in-memory.
DEFAULT_MIN_THROUGHPUT_RATIO = 0.5


def peak_rss_mb() -> float:
    """This process's peak resident set in MB (Linux reports KB)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover — ru_maxrss is bytes there
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _emit(record: dict) -> dict:
    record = dict(record, peak_rss_mb=round(peak_rss_mb(), 2))
    print(json.dumps(record))
    return record


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
def stage_generate(args: argparse.Namespace) -> dict:
    from repro.datasets.scale import SyntheticScaleConfig, generate_scale_tsv

    start = time.perf_counter()
    config = SyntheticScaleConfig(
        num_entities=args.entities,
        num_relations=args.relations,
        num_train=args.train,
        num_valid=args.eval_triples,
        num_test=args.eval_triples,
        seed=args.seed,
    )
    paths = generate_scale_tsv(args.raw_dir, config)
    return _emit(
        {
            "stage": "generate",
            "entities": config.num_entities,
            "train_triples": config.num_train,
            "seconds": round(time.perf_counter() - start, 3),
            "files": {split: str(path) for split, path in paths.items()},
        }
    )


def stage_ingest(args: argparse.Namespace) -> dict:
    from repro.datasets.ingest import ingest_directory

    start = time.perf_counter()
    result = ingest_directory(args.raw_dir, args.store_dir, name="oom-synthetic")
    return _emit(
        {
            "stage": "ingest",
            "num_entities": result.num_entities,
            "num_relations": result.num_relations,
            "splits": result.splits,
            "seconds": round(time.perf_counter() - start, 3),
        }
    )


def stage_shard(args: argparse.Namespace) -> dict:
    from repro.kg.triples import open_compact
    from repro.models.io import init_sharded

    start = time.perf_counter()
    graph = open_compact(args.store_dir)
    source = init_sharded(
        args.model,
        graph.num_entities,
        graph.num_relations,
        directory=args.shard_dir,
        dim=args.dim,
        seed=args.seed,
        dtype=args.dtype,
    )
    return _emit(
        {
            "stage": "shard",
            "model": args.model,
            "dim": args.dim,
            "dtype": args.dtype,
            "nbytes": source.nbytes,
            "seconds": round(time.perf_counter() - start, 3),
        }
    )


def _sampled_run(model, graph, workers: int, num_samples: int, seed: int):
    """One warmed sampled evaluation; returns (queries/s, EngineRun)."""
    import numpy as np

    from repro.core.sampling import build_pools
    from repro.engine.engine import EvaluationEngine

    pools = build_pools(
        graph, "random", np.random.default_rng(seed), num_samples=num_samples
    )
    engine = EvaluationEngine(workers=workers, transport="shm")
    engine.run(model, graph, "test", pools=pools, keep_ranks=False)  # warm
    run = engine.run(model, graph, "test", pools=pools, keep_ranks=False)
    return run.num_queries / max(run.seconds, 1e-9), run


def stage_evaluate(args: argparse.Namespace) -> dict:
    from repro.engine.pool import shutdown_engine_pools
    from repro.kg.triples import open_compact
    from repro.models.io import open_mmap
    from repro.obs import get_registry

    graph = open_compact(args.store_dir)
    model = open_mmap(args.shard_dir)
    start = time.perf_counter()
    qps, run = _sampled_run(model, graph, args.workers, args.num_samples, args.seed)
    shutdown_engine_pools()
    record = _emit(
        {
            "stage": "evaluate",
            "entities": graph.num_entities,
            "queries": run.num_queries,
            "workers": args.workers,
            "num_samples": args.num_samples,
            "mrr": round(run.metrics.mrr, 6),
            "queries_per_second": round(qps, 2),
            "mmap_bytes": get_registry()
            .gauge("repro_engine_mmap_bytes")
            .value(),
            "seconds": round(time.perf_counter() - start, 3),
        }
    )
    if args.ceiling_mb is not None and record["peak_rss_mb"] > args.ceiling_mb:
        print(
            f"FAIL: peak RSS {record['peak_rss_mb']} MB exceeds ceiling "
            f"{args.ceiling_mb} MB",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return record


def stage_compare(args: argparse.Namespace) -> dict:
    """mmap vs in-memory on one model: rank equality + throughput ratio.

    Runs at a deliberately smaller scale than ``evaluate`` so the
    in-memory twin is buildable, with the *same* worker count, which is
    what makes the throughput ratio a like-for-like comparison.
    """
    import numpy as np

    from repro.core.sampling import build_pools
    from repro.datasets.ingest import ingest_directory
    from repro.datasets.scale import SyntheticScaleConfig, generate_scale_tsv
    from repro.engine.engine import EvaluationEngine
    from repro.engine.pool import shutdown_engine_pools
    from repro.kg.triples import open_compact
    from repro.models import build_model
    from repro.models.io import open_mmap, save_sharded

    with tempfile.TemporaryDirectory(prefix="repro-oom-compare-") as tmp:
        tmp_path = Path(tmp)
        config = SyntheticScaleConfig(
            num_entities=args.entities,
            num_relations=args.relations,
            num_train=args.train,
            num_valid=args.eval_triples,
            num_test=args.eval_triples,
            seed=args.seed,
        )
        generate_scale_tsv(tmp_path / "raw", config)
        ingest_directory(tmp_path / "raw", tmp_path / "store")
        graph = open_compact(tmp_path / "store")
        memory_model = build_model(
            args.model,
            graph.num_entities,
            graph.num_relations,
            dim=args.dim,
            seed=args.seed,
            dtype=args.dtype,
        )
        save_sharded(memory_model, tmp_path / "shards")
        mmap_model = open_mmap(tmp_path / "shards")

        pools = build_pools(
            graph,
            "random",
            np.random.default_rng(args.seed),
            num_samples=args.num_samples,
        )
        engine = EvaluationEngine(workers=args.workers, transport="shm")
        runs = {}
        for tag, model in (("memory", memory_model), ("mmap", mmap_model)):
            engine.run(model, graph, "test", pools=pools)  # warm
            runs[tag] = engine.run(model, graph, "test", pools=pools)
        shutdown_engine_pools()
        ranks_equal = runs["memory"].ranks == runs["mmap"].ranks
        qps = {
            tag: run.num_queries / max(run.seconds, 1e-9)
            for tag, run in runs.items()
        }
        ratio = qps["mmap"] / qps["memory"]
    record = _emit(
        {
            "stage": "compare",
            "entities": args.entities,
            "workers": args.workers,
            "queries": runs["mmap"].num_queries,
            "ranks_equal": bool(ranks_equal),
            "memory_queries_per_second": round(qps["memory"], 2),
            "mmap_queries_per_second": round(qps["mmap"], 2),
            "throughput_ratio": round(ratio, 4),
        }
    )
    if not ranks_equal:
        print("FAIL: mmap ranks differ from in-memory ranks", file=sys.stderr)
        raise SystemExit(1)
    if args.min_ratio is not None and ratio < args.min_ratio:
        print(
            f"FAIL: mmap/in-memory throughput ratio {ratio:.3f} below "
            f"{args.min_ratio}",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return record


def _run_stage(argv: list[str]) -> dict:
    """Run one stage as a subprocess; return its parsed JSON result line."""
    command = [sys.executable, "-m", "repro.bench.out_of_core", *argv]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        raise RuntimeError(
            f"stage {argv[0]!r} failed (exit {result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}"
        )
    for line in reversed(result.stdout.strip().splitlines()):
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue
    raise RuntimeError(f"stage {argv[0]!r} printed no JSON record:\n{result.stdout}")


def run_all(args: argparse.Namespace) -> dict:
    """Chain every stage in isolated subprocesses; returns the summary."""
    work = Path(args.work_dir) if args.work_dir else None
    context = (
        tempfile.TemporaryDirectory(prefix="repro-oom-")
        if work is None
        else None
    )
    root = Path(context.name) if context is not None else work
    try:
        root.mkdir(parents=True, exist_ok=True)
        raw, store, shards = root / "raw", root / "store", root / "shards"
        scale = [
            "--entities", str(args.entities),
            "--relations", str(args.relations),
            "--train", str(args.train),
            "--eval-triples", str(args.eval_triples),
            "--seed", str(args.seed),
        ]
        model = [
            "--model", args.model,
            "--dim", str(args.dim),
            "--dtype", args.dtype,
            "--seed", str(args.seed),
        ]
        stages = {
            "generate": _run_stage(["generate", "--raw-dir", str(raw), *scale]),
            "ingest": _run_stage(
                ["ingest", "--raw-dir", str(raw), "--store-dir", str(store)]
            ),
            "shard": _run_stage(
                ["shard", "--store-dir", str(store), "--shard-dir", str(shards), *model]
            ),
            "evaluate": _run_stage(
                [
                    "evaluate",
                    "--store-dir", str(store),
                    "--shard-dir", str(shards),
                    "--workers", str(args.workers),
                    "--num-samples", str(args.num_samples),
                    "--seed", str(args.seed),
                    "--ceiling-mb", str(args.ceiling_mb),
                ]
            ),
            "compare": _run_stage(
                [
                    "compare",
                    "--entities", str(args.compare_entities),
                    "--relations", str(args.relations),
                    "--train", str(args.compare_train),
                    "--eval-triples", str(args.compare_eval_triples),
                    "--workers", str(args.workers),
                    "--num-samples", str(args.num_samples),
                    "--min-ratio", str(args.min_ratio),
                    *model,
                ]
            ),
        }
    finally:
        if context is not None:
            context.cleanup()
    evaluate = stages["evaluate"]
    compare = stages["compare"]
    summary = {
        "stage": "all",
        "entities": args.entities,
        "train_triples": args.train,
        "workers": args.workers,
        "ceiling_mb": args.ceiling_mb,
        "evaluate_peak_rss_mb": evaluate["peak_rss_mb"],
        "rss_headroom": round(args.ceiling_mb / evaluate["peak_rss_mb"], 4),
        "queries_per_second": evaluate["queries_per_second"],
        "throughput_ratio": compare["throughput_ratio"],
        "ranks_equal": compare["ranks_equal"],
        "stages": stages,
    }
    print(json.dumps(summary))
    return summary


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--entities", type=int, default=DEFAULT_ENTITIES)
    parser.add_argument("--relations", type=int, default=DEFAULT_RELATIONS)
    parser.add_argument("--train", type=int, default=DEFAULT_TRAIN)
    parser.add_argument("--eval-triples", type=int, default=DEFAULT_EVAL)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="distmult")
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--dtype", default="float32")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.out_of_core",
        description=__doc__.split("\n\n")[0],
    )
    sub = parser.add_subparsers(dest="stage", required=True)

    def add_stage(name: str, help_: str) -> argparse.ArgumentParser:
        stage = sub.add_parser(name, help=help_)
        stage.add_argument("--seed", type=int, default=0)
        return stage

    generate = add_stage("generate", "stream synthetic TSVs to disk")
    generate.add_argument("--raw-dir", required=True)
    _add_scale_args(generate)

    ingest = add_stage("ingest", "ingest TSVs into a compact store")
    ingest.add_argument("--raw-dir", required=True)
    ingest.add_argument("--store-dir", required=True)

    shard = add_stage("shard", "initialise an mmap model directory")
    shard.add_argument("--store-dir", required=True)
    shard.add_argument("--shard-dir", required=True)
    _add_model_args(shard)

    evaluate = add_stage("evaluate", "sampled mmap evaluation + RSS gate")
    evaluate.add_argument("--store-dir", required=True)
    evaluate.add_argument("--shard-dir", required=True)
    evaluate.add_argument("--workers", type=int, default=4)
    evaluate.add_argument("--num-samples", type=int, default=1000)
    evaluate.add_argument("--ceiling-mb", type=float, default=None)

    compare = add_stage("compare", "mmap vs in-memory at small scale")
    _add_scale_args(compare)
    _add_model_args(compare)
    compare.add_argument("--workers", type=int, default=4)
    compare.add_argument("--num-samples", type=int, default=1000)
    compare.add_argument("--min-ratio", type=float, default=None)

    everything = add_stage("all", "run every stage in subprocesses")
    _add_scale_args(everything)
    _add_model_args(everything)
    everything.add_argument("--workers", type=int, default=4)
    everything.add_argument("--num-samples", type=int, default=1000)
    everything.add_argument("--ceiling-mb", type=float, default=DEFAULT_CEILING_MB)
    everything.add_argument(
        "--min-ratio", type=float, default=DEFAULT_MIN_THROUGHPUT_RATIO
    )
    everything.add_argument("--compare-entities", type=int, default=50_000)
    everything.add_argument("--compare-train", type=int, default=100_000)
    everything.add_argument("--compare-eval-triples", type=int, default=1_000)
    everything.add_argument(
        "--work-dir",
        default=None,
        help="keep stage outputs here instead of a temp directory",
    )
    return parser


_STAGES = {
    "generate": stage_generate,
    "ingest": stage_ingest,
    "shard": stage_shard,
    "evaluate": stage_evaluate,
    "compare": stage_compare,
    "all": run_all,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _STAGES[args.stage](args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
