"""The spec orchestrator: one ``run(spec)`` behind every workflow.

``run`` expands an :class:`~repro.experiment.ExperimentSpec` into the
same pipeline the CLI subcommands used to hand-wire — load the dataset,
build and train the model, prepare the evaluation protocol, rank through
the parallel engine, cache and journal through the store — and returns a
structured :class:`ExperimentResult`.  The ``train``/``evaluate`` CLI
subcommands are thin shims over it, so a hand-written spec run through
``repro run`` is *bit-identical* (same metrics, same store keys) to the
equivalent flag invocation.

Serving specs go through :func:`build_registry`, which shares the same
dataset/model/training resolution and returns the populated
:class:`~repro.serve.ModelRegistry`.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.estimators import SampledEvaluationResult
from repro.core.protocol import EvaluationProtocol, PreparationReport
from repro.core.ranking import FullEvaluationResult
from repro.datasets.zoo import load as load_zoo_dataset
from repro.experiment.specs import DatasetSpec, ExperimentSpec, spec_key
from repro.models import Trainer, TrainingHistory, build_model, save_model
from repro.models.base import KGEModel
from repro.obs import get_tracer

if TYPE_CHECKING:
    from repro.serve.registry import ModelRegistry
    from repro.store.store import ExperimentStore

#: Receives one-line progress messages (the CLI passes ``print``).
Progress = Callable[[str], None]


@dataclass
class ExperimentResult:
    """Everything one spec run produced, in one structured object.

    Evaluation fields are ``None`` for ``task="train"`` runs;
    ``random_estimate`` is additionally ``None`` when the spec disabled
    the random baseline (``evaluation.compare_random = false``).
    """

    spec: ExperimentSpec
    key: str
    model: KGEModel
    history: TrainingHistory
    train_seconds: float
    triples_per_epoch: int
    preparation: PreparationReport | None = None
    truth: FullEvaluationResult | None = None
    random_estimate: SampledEvaluationResult | None = None
    guided_estimate: SampledEvaluationResult | None = None
    checkpoint_path: str | None = None
    run_id: str | None = None
    seconds: float = 0.0
    cache_hit: bool = False

    @property
    def losses(self) -> list[float]:
        return self.history.losses

    def metric_summary(self) -> dict[str, float]:
        """The journal-friendly metric summary of this run."""
        if self.truth is None:
            return {"loss": self.losses[-1]} if self.losses else {}
        summary = {
            "mrr": self.truth.metrics.mrr,
            "hits@10": self.truth.metrics.hits_at(10),
        }
        if self.guided_estimate is not None:
            summary["estimated_mrr"] = self.guided_estimate.metrics.mrr
        return summary

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the spec, the key and every metric)."""

        def _eval(result) -> dict[str, Any] | None:
            if result is None:
                return None
            return {
                "mrr": result.metrics.mrr,
                "hits@10": result.metrics.hits_at(10),
                "seconds": result.seconds,
                "num_scored": result.num_scored,
            }

        return {
            "spec": self.spec.to_dict(),
            "key": self.key,
            "losses": self.losses,
            "train_seconds": self.train_seconds,
            "full": _eval(self.truth),
            "random": _eval(self.random_estimate),
            "guided": _eval(self.guided_estimate),
            "checkpoint": self.checkpoint_path,
            "run_id": self.run_id,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
        }


def load_dataset(spec: DatasetSpec):
    """Materialise the spec's dataset (zoo entry + overrides)."""
    return load_zoo_dataset(spec.name, overrides=dict(spec.options) or None)


def _journal_config(spec: ExperimentSpec) -> dict[str, Any]:
    """The flat config summary journalled next to the full spec."""
    config: dict[str, Any] = {
        "task": spec.task,
        "dataset": spec.dataset.name,
        "model": spec.model.name,
        "epochs": spec.training.epochs,
        "dim": spec.model.dim,
        "lr": spec.training.lr,
        "loss": spec.training.loss,
        "seed": spec.model.seed,
        "dtype": spec.model.dtype,
    }
    if spec.task == "evaluate":
        evaluation = spec.evaluation
        config.update(
            {
                "recommender": evaluation.recommender,
                "strategy": evaluation.strategy,
                "fraction": evaluation.sample_fraction,
                "num_samples": evaluation.num_samples,
                "workers": evaluation.workers,
            }
        )
    return config


def _train(
    spec: ExperimentSpec, graph, say: Progress
) -> tuple[KGEModel, TrainingHistory, float, int]:
    model = build_model(
        spec.model.name,
        graph.num_entities,
        graph.num_relations,
        dim=spec.model.dim,
        seed=spec.model.seed,
        dtype=spec.model.dtype,
        **spec.model.options,
    )
    config = spec.training.to_config()
    path_note = "" if config.use_fused else " (autodiff path)"
    say(
        f"Training {spec.model.name} ({spec.model.dtype}) on {graph.name} "
        f"for {config.epochs} epochs{path_note} ..."
    )
    start = time.perf_counter()
    history = Trainer(config).fit(model, graph)
    train_seconds = time.perf_counter() - start
    if history.losses:
        say(f"loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    # Reciprocal-relation models (ConvE) train on inverse-augmented batches.
    triples_per_epoch = len(graph.train) * (
        2 if getattr(model, "inverse_offset", None) is not None else 1
    )
    return model, history, train_seconds, triples_per_epoch


def _to_mmap_backend(
    model: KGEModel,
    spec: ExperimentSpec,
    store: "ExperimentStore | None",
    say: Progress,
) -> KGEModel:
    """Round-trip a trained model through ``.npy`` shards and reattach.

    With a store the shards live under ``<root>/mmap/<spec key>`` (stable
    across runs, so a re-run re-saves in place); without one they go to a
    fresh temp directory.  The returned model scores bit-identically to
    the in-memory original — only the page residency changes.
    """
    from repro.models.io import open_mmap, save_sharded

    if store is not None:
        directory = store.root / "mmap" / spec_key(spec)
    else:
        directory = tempfile.mkdtemp(prefix="repro-mmap-")
    source = save_sharded(model, directory)
    say(f"Sharded {model.name} to {source.directory} ({source.nbytes} bytes)")
    return open_mmap(source.directory)


def run(
    spec: ExperimentSpec,
    store: "ExperimentStore | None" = None,
    kind: str = "experiment:run",
    progress: Progress | None = None,
) -> ExperimentResult:
    """Execute one ``train`` or ``evaluate`` spec end to end.

    With a ``store``, evaluation artifacts (preparation, pools, ground
    truths) flow through the artifact cache and the run is journalled —
    including the originating spec, so ``repro runs show`` can replay
    it.  ``kind`` labels the journal entry (the CLI shims pass their
    command name); ``progress`` receives one-line status messages.
    """
    if spec.task == "serve":
        raise ValueError(
            "serve specs stand up a service, not an ExperimentResult; "
            "use repro.experiment.build_registry (or `repro serve` / "
            "`repro run` on the CLI)"
        )
    say: Progress = progress or (lambda message: None)
    tracer = get_tracer()
    if tracer.enabled:
        # Each journaled run carries only its own trace (sweep variants
        # that share the process each start from a clean tree).
        tracer.reset()
    wall_start = time.perf_counter()
    with tracer.span("experiment.task"):
        with tracer.span("dataset.load"):
            dataset = load_dataset(spec.dataset)
            graph = dataset.graph
        model, history, train_seconds, triples_per_epoch = _train(spec, graph, say)

        checkpoint_path: str | None = None
        if spec.checkpoint:
            save_model(model, spec.checkpoint)
            checkpoint_path = spec.checkpoint
            say(f"Saved checkpoint to {spec.checkpoint}")

        if spec.model.backend == "mmap":
            with tracer.span("model.shard"):
                model = _to_mmap_backend(model, spec, store, say)

        preparation = truth = random_estimate = guided_estimate = None
        if spec.task == "evaluate":
            evaluation = spec.evaluation
            guided = EvaluationProtocol(
                graph,
                recommender=evaluation.recommender,
                strategy=evaluation.strategy,
                num_samples=evaluation.num_samples,
                sample_fraction=evaluation.sample_fraction,
                types=dataset.types,
                include_observed=evaluation.include_observed,
                seed=evaluation.seed,
                store=store,
                workers=evaluation.workers,
                chunk_size=evaluation.chunk_size,
            )
            with tracer.span("evaluate.prepare"):
                preparation = guided.prepare()
                if evaluation.resample_seed is not None:
                    guided.resample(evaluation.resample_seed)
                    preparation = guided.preparation
            with tracer.span("evaluate.full"):
                truth = guided.evaluate_full(model, split=evaluation.split)
            if evaluation.compare_random:
                random_protocol = EvaluationProtocol(
                    graph,
                    strategy="random",
                    num_samples=evaluation.num_samples,
                    sample_fraction=evaluation.sample_fraction,
                    seed=evaluation.seed,
                    store=store,
                    workers=evaluation.workers,
                    chunk_size=evaluation.chunk_size,
                )
                if evaluation.resample_seed is not None:
                    random_protocol.resample(evaluation.resample_seed)
                with tracer.span("evaluate.random"):
                    random_estimate = random_protocol.evaluate(
                        model, split=evaluation.split
                    )
            with tracer.span("evaluate.guided"):
                guided_estimate = guided.evaluate(model, split=evaluation.split)

    result = ExperimentResult(
        spec=spec,
        key=spec_key(spec),
        model=model,
        history=history,
        train_seconds=train_seconds,
        triples_per_epoch=triples_per_epoch,
        preparation=preparation,
        truth=truth,
        random_estimate=random_estimate,
        guided_estimate=guided_estimate,
        checkpoint_path=checkpoint_path,
        cache_hit=preparation is not None and preparation.from_cache,
        seconds=time.perf_counter() - wall_start,
    )
    if store is not None:
        record = store.journal.append(
            kind,
            config=_journal_config(spec),
            seconds=result.seconds,
            metrics=result.metric_summary(),
            cache_hit=result.cache_hit,
            spec=spec.to_dict(),
            obs=tracer.summary() if tracer.enabled else None,
        )
        result.run_id = record.run_id
    return result


def build_registry(
    spec: ExperimentSpec,
    store: "ExperimentStore",
    progress: Progress | None = None,
) -> tuple["ModelRegistry", list[str]]:
    """Resolve a ``serve`` spec into a populated model registry.

    Registers every ``serve.model_paths`` checkpoint, discovers named
    checkpoints under the store's ``serve/`` directory, and — when both
    leave the registry empty — trains an ad-hoc model from the spec's
    ``model`` + ``training`` sections (persisting it for the next
    process).  Returns ``(registry, discovered_names)``.
    """
    from repro.serve.registry import ModelRegistry, parse_model_path

    say: Progress = progress or (lambda message: None)
    dataset = load_dataset(spec.dataset)
    registry = ModelRegistry(
        store,
        dataset.graph,
        types=dataset.types,
        recommender=spec.serve.recommender,
    )
    for item in spec.serve.model_paths:
        name, path = parse_model_path(item)
        registry.register_path(path, name=name)
    discovered = registry.discover()
    if not len(registry):
        say(
            f"Training an ad-hoc {spec.model.name} (no model paths given, "
            f"none under {registry.checkpoint_dir}) ..."
        )
        model, _, _, _ = _train(spec, dataset.graph, lambda message: None)
        registry.register(spec.model.name, model)
    return registry, discovered
