"""Sweep expansion: one base spec, many deterministic variants.

``sweep(spec, grid=...)`` expands dotted-path override axes into fully
validated variant specs.  Two axis kinds compose:

* ``grid`` — a cartesian product over every combination (``{"model.dim":
  [16, 32], "training.lr": [0.01, 0.05]}`` is four variants);
* ``zip_`` — parallel lists advanced together (``{"model.name":
  ["transe", "distmult"], "training.loss": ["margin", "softplus"]}`` is
  two variants), the way paired hyperparameters are swept.

Each variant carries a deterministic :func:`~repro.experiment.spec_key`
derived from its *resolved spec content*, so re-running a sweep — or a
different sweep sharing some variants — reuses the store's artifact
cache for every shared stage: two variants differing only in training
hyperparameters share the prepared pools, and two differing only in the
evaluation seed share the trained model's ground-truth cache entries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.experiment.specs import (
    ExperimentSpec,
    SpecError,
    apply_overrides,
    spec_key,
)


@dataclass(frozen=True)
class SweepVariant:
    """One expanded sweep point: the spec, its overrides, its identity."""

    spec: ExperimentSpec
    overrides: dict[str, Any]
    key: str

    @property
    def label(self) -> str:
        """Human-readable override summary (``dim=16, lr=0.01``)."""
        if not self.overrides:
            return "(base)"
        return ", ".join(
            f"{dotted.rsplit('.', 1)[-1]}={value}"
            for dotted, value in self.overrides.items()
        )


def _check_axes(name: str, axes: Mapping[str, Sequence[Any]] | None) -> dict[str, list[Any]]:
    if axes is None:
        return {}
    checked: dict[str, list[Any]] = {}
    for dotted, values in axes.items():
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise SpecError(
                f"sweep.{name}[{dotted!r}]: expected a list of values, "
                f"got {values!r}"
            )
        if not values:
            raise SpecError(f"sweep.{name}[{dotted!r}]: empty value list")
        checked[dotted] = list(values)
    return checked


def sweep(
    spec: ExperimentSpec,
    grid: Mapping[str, Sequence[Any]] | None = None,
    zip_: Mapping[str, Sequence[Any]] | None = None,
) -> list[SweepVariant]:
    """Expand a base spec into validated variants (grid × zip).

    Variant order is deterministic: zip bundles advance outermost, grid
    axes vary in insertion order with the last axis fastest.  Every
    variant re-validates through ``ExperimentSpec.from_dict``, so a bad
    override value fails the whole sweep up front with the field path in
    the message.  With neither axis given, the base spec itself is the
    single variant.
    """
    grid_axes = _check_axes("grid", grid)
    zip_axes = _check_axes("zip", zip_)
    lengths = {len(values) for values in zip_axes.values()}
    if len(lengths) > 1:
        detail = ", ".join(f"{k}: {len(v)}" for k, v in zip_axes.items())
        raise SpecError(f"sweep.zip: axes must share one length, got {detail}")

    zip_bundles: list[dict[str, Any]] = [{}]
    if zip_axes:
        length = lengths.pop()
        zip_bundles = [
            {dotted: values[i] for dotted, values in zip_axes.items()}
            for i in range(length)
        ]
    grid_combos: list[dict[str, Any]] = [{}]
    if grid_axes:
        keys = list(grid_axes)
        grid_combos = [
            dict(zip(keys, combo))
            for combo in itertools.product(*(grid_axes[k] for k in keys))
        ]

    base = spec.to_dict()
    variants: list[SweepVariant] = []
    for bundle in zip_bundles:
        for combo in grid_combos:
            overrides = {**bundle, **combo}
            variant_spec = ExperimentSpec.from_dict(apply_overrides(base, overrides))
            variants.append(
                SweepVariant(
                    spec=variant_spec,
                    overrides=overrides,
                    key=spec_key(variant_spec),
                )
            )
    return variants
