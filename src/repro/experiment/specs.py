"""Typed, declarative experiment specs (the front door's vocabulary).

An :class:`ExperimentSpec` names everything the orchestrator needs —
dataset, model, training recipe, evaluation protocol, serving knobs — as
frozen dataclasses that round-trip losslessly through ``to_dict`` /
``from_dict`` and JSON.  Validation happens at construction: unknown
keys, misspelled enum values and names missing from the model /
recommender / dataset registries all fail immediately with an error that
names the offending field path and suggests the closest valid spelling.

The canonical dict form is also the spec's *identity*: hashing it (see
:func:`spec_key`) gives the deterministic key under which the store
journals spec-driven runs and sweeps label their variants.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.datasets.zoo import available_datasets
from repro.engine.chunking import DEFAULT_CHUNK_SIZE
from repro.models import available_losses, available_models
from repro.models.base import DTYPES
from repro.models.optim import OPTIMIZERS
from repro.models.training import TrainingConfig
from repro.recommenders.registry import available_recommenders

#: What a spec asks the orchestrator to do.
TASKS = ("train", "evaluate", "serve")

#: Negative-pool strategies of the evaluation protocol.
STRATEGIES = ("random", "probabilistic", "static")

#: Splits an evaluation may rank.
SPLITS = ("valid", "test")

#: Model storage backends: in-memory arrays, or mmap shards on disk.
BACKENDS = ("memory", "mmap")


class SpecError(ValueError):
    """A spec failed validation; the message names the field path."""


def _suggest(value: str, choices) -> str:
    matches = difflib.get_close_matches(str(value), [str(c) for c in choices], n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _check_choice(path: str, value: Any, choices) -> None:
    if value not in tuple(choices):
        raise SpecError(
            f"{path}: unknown value {value!r}{_suggest(value, choices)}; "
            f"valid choices: {', '.join(str(c) for c in choices)}"
        )


def _check_type(path: str, value: Any, types: tuple[type, ...], label: str) -> None:
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and bool not in types:
        raise SpecError(f"{path}: expected {label}, got {value!r}")
    if not isinstance(value, types):
        raise SpecError(f"{path}: expected {label}, got {value!r}")


def _reject_unknown_keys(path: str, payload: Mapping[str, Any], known) -> None:
    for key in payload:
        if key not in known:
            raise SpecError(
                f"{path}: unknown key {key!r}{_suggest(key, known)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )


def _pick(payload: Mapping[str, Any], spec_cls, path: str) -> dict[str, Any]:
    """Validate ``payload``'s keys against a spec dataclass and copy them."""
    names = tuple(f.name for f in fields(spec_cls))
    _reject_unknown_keys(path, payload, names)
    return dict(payload)


# ----------------------------------------------------------------------
# Section specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetSpec:
    """Which graph to run on.

    ``options`` overrides fields of the zoo entry's
    :class:`~repro.datasets.synthetic.SyntheticConfig` (e.g. a larger
    ``num_entities`` for a scaling sweep); the overridden dataset is a
    distinct graph with its own content fingerprint, so store artifacts
    never collide with the unmodified zoo entry.
    """

    name: str = "codex-s-lite"
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_choice("dataset.name", self.name, available_datasets())
        _check_type("dataset.options", self.options, (dict,), "a mapping")
        if "name" in self.options:
            raise SpecError(
                "dataset.options: 'name' cannot be overridden — the zoo "
                "name identifies the base configuration"
            )
        if self.options:
            # Resolve the overridden generator config now (cheap — no
            # graph is generated), so a typo'd field name or invalid
            # value fails at spec construction, not mid-run.
            from repro.datasets.zoo import resolve_config

            try:
                resolve_config(self.name, dict(self.options))
            except (KeyError, TypeError, ValueError) as error:
                message = error.args[0] if error.args else str(error)
                raise SpecError(f"dataset.options: {message}") from error

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatasetSpec":
        return cls(**_pick(payload, cls, "dataset"))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "options": dict(self.options)}


@dataclass(frozen=True)
class ModelSpec:
    """Which KGE model to build (a ``repro.models`` registry entry).

    ``options`` holds extra constructor kwargs of the specific model
    class (e.g. ConvE's reshape sizes); they are forwarded verbatim to
    :func:`repro.models.build_model`.

    ``backend`` selects the parameter storage for evaluation:
    ``"memory"`` (default) keeps the trained arrays in process;
    ``"mmap"`` round-trips them through ``.npy`` shards
    (:func:`repro.models.io.save_sharded` / ``open_mmap``) so the
    evaluation reads file pages instead of resident memory — scores are
    bit-identical either way (see ``docs/scale.md``).
    """

    name: str = "complex"
    dim: int = 32
    seed: int = 0
    dtype: str = "float64"
    backend: str = "memory"
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_choice("model.name", self.name, available_models())
        _check_choice("model.dtype", self.dtype, sorted(DTYPES))
        _check_choice("model.backend", self.backend, BACKENDS)
        _check_type("model.dim", self.dim, (int,), "a positive int")
        if self.dim <= 0:
            raise SpecError(f"model.dim: must be positive, got {self.dim}")
        _check_type("model.seed", self.seed, (int,), "an int")
        _check_type("model.options", self.options, (dict,), "a mapping")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelSpec":
        return cls(**_pick(payload, cls, "model"))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dim": self.dim,
            "seed": self.seed,
            "dtype": self.dtype,
            "backend": self.backend,
            "options": dict(self.options),
        }


@dataclass(frozen=True)
class TrainingSpec:
    """The training recipe (mirrors :class:`repro.models.TrainingConfig`).

    Defaults follow the CLI front door (8 epochs, softplus loss) rather
    than the library-internal ``TrainingConfig`` defaults, so a minimal
    spec and a bare ``repro evaluate`` train the same model.
    """

    epochs: int = 8
    batch_size: int = 512
    num_negatives: int = 8
    lr: float = 0.05
    loss: str = "softplus"
    margin: float = 1.0
    optimizer: str = "adam"
    weight_decay: float = 0.0
    filter_false_negatives: bool = True
    use_fused: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        _check_choice("training.loss", self.loss, available_losses())
        _check_choice("training.optimizer", self.optimizer, OPTIMIZERS)
        _check_type("training.epochs", self.epochs, (int,), "a non-negative int")
        if self.epochs < 0:
            raise SpecError(f"training.epochs: must be >= 0, got {self.epochs}")
        for name in ("batch_size", "num_negatives"):
            value = getattr(self, name)
            _check_type(f"training.{name}", value, (int,), "a positive int")
            if value <= 0:
                raise SpecError(f"training.{name}: must be positive, got {value}")
        for name in ("lr", "margin", "weight_decay"):
            _check_type(f"training.{name}", getattr(self, name), (int, float), "a number")
        _check_type("training.seed", self.seed, (int,), "an int")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrainingSpec":
        return cls(**_pick(payload, cls, "training"))

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_config(self) -> TrainingConfig:
        """The :class:`~repro.models.TrainingConfig` this spec describes."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            num_negatives=self.num_negatives,
            lr=self.lr,
            loss=self.loss,
            margin=self.margin,
            optimizer=self.optimizer,
            weight_decay=self.weight_decay,
            filter_false_negatives=self.filter_false_negatives,
            use_fused=self.use_fused,
            seed=self.seed,
        )


@dataclass(frozen=True)
class EvaluationSpec:
    """The evaluation protocol: recommender, strategy, sample size, engine.

    ``resample_seed`` redraws the pools *after* preparation (repeated-
    sampling confidence intervals); the protocol threads it into its
    store cache key, so resampled artifacts never collide with the
    original draw's.  ``compare_random`` adds the uniform-random
    baseline estimate next to the guided one (the CLI's comparison
    table).
    """

    recommender: str = "l-wd"
    strategy: str = "static"
    sample_fraction: float | None = 0.1
    num_samples: int | None = None
    split: str = "test"
    seed: int = 0
    resample_seed: int | None = None
    include_observed: bool = True
    compare_random: bool = True
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        _check_choice("evaluation.recommender", self.recommender, available_recommenders())
        _check_choice("evaluation.strategy", self.strategy, STRATEGIES)
        _check_choice("evaluation.split", self.split, SPLITS)
        if (self.sample_fraction is None) == (self.num_samples is None):
            raise SpecError(
                "evaluation: exactly one of 'sample_fraction' and "
                "'num_samples' must be set"
            )
        if self.sample_fraction is not None:
            _check_type(
                "evaluation.sample_fraction", self.sample_fraction, (int, float), "a number"
            )
            if not 0.0 < float(self.sample_fraction) <= 1.0:
                raise SpecError(
                    f"evaluation.sample_fraction: must be in (0, 1], "
                    f"got {self.sample_fraction}"
                )
        if self.num_samples is not None:
            _check_type("evaluation.num_samples", self.num_samples, (int,), "a positive int")
            if self.num_samples <= 0:
                raise SpecError(
                    f"evaluation.num_samples: must be positive, got {self.num_samples}"
                )
        _check_type("evaluation.seed", self.seed, (int,), "an int")
        if self.resample_seed is not None:
            _check_type("evaluation.resample_seed", self.resample_seed, (int,), "an int")
        _check_type("evaluation.workers", self.workers, (int,), "an int")
        _check_type("evaluation.chunk_size", self.chunk_size, (int,), "a positive int")
        if self.chunk_size <= 0:
            raise SpecError(
                f"evaluation.chunk_size: must be positive, got {self.chunk_size}"
            )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluationSpec":
        picked = _pick(payload, cls, "evaluation")
        # A spec naming only num_samples means "by count, not by fraction".
        if "num_samples" in picked and picked.get("num_samples") is not None:
            picked.setdefault("sample_fraction", None)
        return cls(**picked)

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ServeSpec:
    """Online-serving knobs (used when the spec's task is ``"serve"``).

    ``model_paths`` lists checkpoints as ``[NAME=]PATH`` strings exactly
    like the CLI's repeatable ``--model-path``; with none given (and no
    discoverable checkpoints) the orchestrator trains an ad-hoc model
    from the spec's ``model`` + ``training`` sections.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 64
    max_wait_ms: float = 2.0
    cache_size: int = 1024
    engine_workers: int = 1
    recommender: str = "l-wd"
    model_paths: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_choice("serve.recommender", self.recommender, available_recommenders())
        _check_type("serve.port", self.port, (int,), "an int")
        if not 0 <= self.port <= 65535:
            raise SpecError(f"serve.port: must be in [0, 65535], got {self.port}")
        _check_type("serve.max_batch", self.max_batch, (int,), "a positive int")
        if self.max_batch <= 0:
            raise SpecError(f"serve.max_batch: must be positive, got {self.max_batch}")
        _check_type("serve.max_wait_ms", self.max_wait_ms, (int, float), "a number")
        if self.max_wait_ms < 0:
            raise SpecError(
                f"serve.max_wait_ms: must be non-negative, got {self.max_wait_ms}"
            )
        _check_type("serve.cache_size", self.cache_size, (int,), "a non-negative int")
        if self.cache_size < 0:
            raise SpecError(f"serve.cache_size: must be >= 0, got {self.cache_size}")
        _check_type(
            "serve.engine_workers", self.engine_workers, (int,), "a positive int"
        )
        if self.engine_workers < 1:
            raise SpecError(
                f"serve.engine_workers: must be >= 1, got {self.engine_workers}"
            )
        object.__setattr__(self, "model_paths", tuple(self.model_paths))
        for path in self.model_paths:
            _check_type("serve.model_paths[]", path, (str,), "a string")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServeSpec":
        picked = _pick(payload, cls, "serve")
        if "model_paths" in picked:
            value = picked["model_paths"]
            if not isinstance(value, (list, tuple)):
                raise SpecError(
                    f"serve.model_paths: expected a list of '[NAME=]PATH' "
                    f"strings, got {value!r}"
                )
            picked["model_paths"] = tuple(value)
        return cls(**picked)

    def to_dict(self) -> dict[str, Any]:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["model_paths"] = list(self.model_paths)
        return payload


# ----------------------------------------------------------------------
# The top-level spec
# ----------------------------------------------------------------------
_SECTIONS = {
    "dataset": DatasetSpec,
    "model": ModelSpec,
    "training": TrainingSpec,
    "evaluation": EvaluationSpec,
    "serve": ServeSpec,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: what to run, on what, and how.

    ``task`` selects the workflow: ``"train"`` fits the model (writing
    ``checkpoint`` if set), ``"evaluate"`` additionally runs the full /
    random / guided evaluation comparison, ``"serve"`` stands up the
    online service.  All sections always carry fully resolved defaults,
    so ``to_dict()`` *is* the resolved configuration (what ``repro run
    --dry-run`` prints) and hashing it gives the spec's identity.
    """

    name: str = ""
    task: str = "evaluate"
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    training: TrainingSpec = field(default_factory=TrainingSpec)
    evaluation: EvaluationSpec = field(default_factory=EvaluationSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)
    checkpoint: str | None = None

    def __post_init__(self) -> None:
        _check_type("name", self.name, (str,), "a string")
        _check_choice("task", self.task, TASKS)
        for section, cls in _SECTIONS.items():
            value = getattr(self, section)
            if not isinstance(value, cls):
                raise SpecError(
                    f"{section}: expected a {cls.__name__} (or mapping), got {value!r}"
                )
        if self.checkpoint is not None:
            _check_type("checkpoint", self.checkpoint, (str,), "a path string")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        known = tuple(f.name for f in fields(cls))
        _reject_unknown_keys("spec", payload, known)
        kwargs: dict[str, Any] = {}
        for key, value in payload.items():
            if key in _SECTIONS:
                if isinstance(value, Mapping):
                    value = _SECTIONS[key].from_dict(value)
                elif not isinstance(value, _SECTIONS[key]):
                    raise SpecError(
                        f"{key}: expected a mapping of {key} fields, got {value!r}"
                    )
            kwargs[key] = value
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "task": self.task,
            "dataset": self.dataset.to_dict(),
            "model": self.model.to_dict(),
            "training": self.training.to_dict(),
            "evaluation": self.evaluation.to_dict(),
            "serve": self.serve.to_dict(),
            "checkpoint": self.checkpoint,
        }

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"spec is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise SpecError(f"spec must be a JSON object, got {type(payload).__name__}")
        return cls.from_dict(payload)

    def key(self) -> str:
        """Deterministic identity of this spec (see :func:`spec_key`)."""
        return spec_key(self)

    def replace(self, **overrides: Any) -> "ExperimentSpec":
        """A copy with top-level fields replaced (sections stay typed)."""
        return dataclasses.replace(self, **overrides)


def spec_key(spec: ExperimentSpec) -> str:
    """Stable hex key of a spec's canonical dict form.

    Two specs that resolve to the same configuration — regardless of the
    JSON field order or which defaults were spelled out — share a key;
    any differing field produces a different key.  Sweeps label their
    variants with it and the store journals spec-driven runs under it.
    """
    from repro.store.keys import experiment_key

    return experiment_key(spec.to_dict())


# ----------------------------------------------------------------------
# Dotted overrides and spec files
# ----------------------------------------------------------------------
def parse_set_expression(expression: str) -> tuple[str, Any]:
    """Parse one ``--set key=value`` into ``(dotted_key, value)``.

    Values parse as JSON when possible (numbers, booleans, null, lists),
    falling back to the raw string, so ``--set training.lr=0.1`` and
    ``--set model.name=transe`` both do the obvious thing.
    """
    key, sep, raw = expression.partition("=")
    key = key.strip()
    if not sep or not key:
        raise SpecError(
            f"--set expects KEY=VALUE with a dotted key (e.g. "
            f"training.lr=0.1), got {expression!r}"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def apply_overrides(
    payload: dict[str, Any], overrides: Mapping[str, Any]
) -> dict[str, Any]:
    """Apply dotted-path overrides to a nested spec payload (pure).

    ``{"training.lr": 0.1}`` sets ``payload["training"]["lr"]``.
    Intermediate mappings are created as needed; validation of the final
    values happens when the payload goes through ``from_dict``.
    """
    result = json.loads(json.dumps(payload))  # deep copy, JSON-typed
    for dotted, value in overrides.items():
        parts = dotted.split(".")
        target = result
        for part in parts[:-1]:
            existing = target.get(part)
            if existing is None:
                existing = target[part] = {}
            elif not isinstance(existing, dict):
                raise SpecError(
                    f"--set {dotted}: {part!r} is not a section, cannot "
                    f"descend into it"
                )
            target = existing
        target[parts[-1]] = value
    return result


def load_spec_file(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Read a spec JSON file into its raw payload dict.

    The payload may carry a top-level ``"sweep"`` section; callers apply
    any ``--set`` overrides first (so ``sweep.*`` is overridable too)
    and then strip it with :func:`split_sweep` before ``from_dict``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SpecError(f"spec file {os.fspath(path)!r} does not exist") from None
    except json.JSONDecodeError as error:
        raise SpecError(f"spec file {os.fspath(path)!r} is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise SpecError(
            f"spec file {os.fspath(path)!r} must hold a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def split_sweep(
    payload: Mapping[str, Any],
) -> tuple[dict[str, Any], dict[str, Any] | None]:
    """Split the optional ``"sweep"`` section off a spec payload (pure).

    The sweep object (``{"grid": {...}, "zip": {...}}``) parameterises
    *many* specs, so it is not part of any single
    :class:`ExperimentSpec`; returns ``(spec_payload, sweep_section)``.
    """
    spec_payload = dict(payload)
    sweep_section = spec_payload.pop("sweep", None)
    if sweep_section is not None and not isinstance(sweep_section, dict):
        raise SpecError('"sweep" must be an object like {"grid": {...}}')
    return spec_payload, sweep_section
