"""``repro.experiment`` — the declarative, spec-driven front door.

One typed :class:`ExperimentSpec` names a dataset, model, training
recipe, evaluation protocol and serving configuration; :func:`run`
orchestrates it through the trainer, the evaluation protocol, the
parallel engine and the experiment store; :func:`sweep` expands a base
spec into deterministic multi-config variants.  The CLI's ``repro run``
command (and the ``train`` / ``evaluate`` / ``serve`` shims) are thin
wrappers over exactly this API::

    from repro.experiment import ExperimentSpec, run

    spec = ExperimentSpec.from_dict({
        "dataset": {"name": "codex-s-lite"},
        "model": {"name": "distmult", "dim": 16},
        "training": {"epochs": 4},
        "evaluation": {"recommender": "l-wd", "sample_fraction": 0.1},
    })
    result = run(spec)            # -> ExperimentResult
    print(result.truth.metrics.mrr, result.guided_estimate.metrics.mrr)
"""

from repro.experiment.runner import (
    ExperimentResult,
    build_registry,
    load_dataset,
    run,
)
from repro.experiment.specs import (
    DatasetSpec,
    EvaluationSpec,
    ExperimentSpec,
    ModelSpec,
    ServeSpec,
    SpecError,
    TrainingSpec,
    apply_overrides,
    load_spec_file,
    parse_set_expression,
    spec_key,
    split_sweep,
)
from repro.experiment.sweep import SweepVariant, sweep

__all__ = [
    "DatasetSpec",
    "EvaluationSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "ModelSpec",
    "ServeSpec",
    "SpecError",
    "SweepVariant",
    "TrainingSpec",
    "apply_overrides",
    "build_registry",
    "load_dataset",
    "load_spec_file",
    "parse_set_expression",
    "run",
    "spec_key",
    "split_sweep",
    "sweep",
]
