"""The experiment store facade: one root directory, cache + journal.

Layout on disk::

    <root>/
      artifacts/              # key-addressed cache (see artifacts.py)
        model/      <key>.npz
        pools/      <key>.npz
        candidates/ <key>.npz
        truth/      <key>.json
        study/      <key>.json
        prep/       <key>.json
      journal.jsonl           # append-only run journal

Pass an :class:`ExperimentStore` as the ``store=`` argument of
:class:`repro.core.protocol.EvaluationProtocol` or
:func:`repro.bench.runner.run_training_study` and repeated studies skip
training, pool construction and full-ranking recomputation entirely.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.ranking import FullEvaluationResult, evaluate_full
from repro.kg.graph import KnowledgeGraph
from repro.metrics.ranking import HITS_AT
from repro.models.base import KGEModel
from repro.store.artifacts import ArtifactStore
from repro.store.journal import RunJournal
from repro.store.keys import ground_truth_key
from repro.store.serializers import full_result_from_dict, full_result_to_dict

#: Environment variable naming the default store root for the CLI.
STORE_ENV = "REPRO_STORE"

#: Fallback store root (relative to the working directory).
DEFAULT_ROOT = ".repro_store"


class ExperimentStore:
    """Persistent artifact cache + run journal under one root directory."""

    def __init__(self, root: str | os.PathLike[str], max_memory_entries: int = 128):
        self.root = Path(root)
        self.artifacts = ArtifactStore(
            self.root / "artifacts", max_memory_entries=max_memory_entries
        )
        self.journal = RunJournal(self.root / "journal.jsonl")

    @classmethod
    def from_env(cls, root: str | os.PathLike[str] | None = None) -> "ExperimentStore":
        """Resolve the store root: explicit arg > ``$REPRO_STORE`` > default."""
        if root is None:
            root = os.environ.get(STORE_ENV) or DEFAULT_ROOT
        return cls(root)

    # ------------------------------------------------------------------
    def cached_evaluate_full(
        self,
        model: KGEModel,
        graph: KnowledgeGraph,
        split: str = "test",
        hits_at: tuple[int, ...] = HITS_AT,
        workers: int = 1,
        chunk_size: int | None = None,
    ) -> FullEvaluationResult:
        """Full filtered-ranking evaluation through the ground-truth cache.

        The key covers the graph content, the model's exact parameters,
        the split and the Hits@K grid, so a hit is guaranteed to be the
        same computation.  Cached results keep their *original* compute
        ``seconds`` — speed-up tables stay meaningful — while the actual
        wall-clock of a hit is just the artifact load.

        ``workers`` / ``chunk_size`` only shape the *miss* path (they are
        execution knobs, not provenance, so they are deliberately outside
        the cache key — the engine produces identical ranks at any worker
        count).
        """
        key = ground_truth_key(graph, model, split, hits_at)
        cached = self.artifacts.get_json("truth", key)
        if cached is not None:
            return full_result_from_dict(cached)
        engine_kwargs = {"workers": workers}
        if chunk_size is not None:
            engine_kwargs["chunk_size"] = chunk_size
        result = evaluate_full(model, graph, split=split, hits_at=hits_at, **engine_kwargs)
        self.artifacts.put_json(
            "truth",
            key,
            full_result_to_dict(result),
            labels={"graph": graph.name, "model": model.name, "split": split},
        )
        return result

    def gc(self):
        """Collect orphaned artifacts; returns the ``GCReport``."""
        return self.artifacts.gc()

    def __repr__(self) -> str:
        return (
            f"ExperimentStore({str(self.root)!r}, "
            f"{len(self.artifacts.entries())} artifacts, {len(self.journal)} runs)"
        )
