"""repro.store — persistent experiment store, artifact cache, run journal.

Three layers:

* :class:`ArtifactStore` — key-addressed on-disk cache (checkpoints,
  negative pools, candidate sets, ground truths, studies) with an
  in-memory LRU front;
* :class:`RunJournal` — append-only JSONL record of every run;
* :mod:`repro.store.report` — journal/cache listings as table, csv, json.

:class:`ExperimentStore` bundles all three under one root directory and is
the object the rest of the stack accepts as ``store=``.
"""

from repro.store.artifacts import ArtifactInfo, ArtifactStore, GCReport
from repro.store.journal import RunJournal, RunRecord
from repro.store.keys import (
    cache_key,
    canonical_json,
    graph_fingerprint,
    ground_truth_key,
    model_fingerprint,
    pools_key,
    preparation_key,
    study_key,
)
from repro.store.lru import LRUCache
from repro.store.report import (
    cache_rows,
    journal_rows,
    render_cache,
    render_run_detail,
    render_rows,
    render_runs,
)
from repro.store.serializers import (
    full_result_from_dict,
    full_result_to_dict,
    load_candidates,
    load_pools,
    metrics_from_dict,
    metrics_to_dict,
    save_candidates,
    save_pools,
    study_from_dict,
    study_to_dict,
)
from repro.store.store import DEFAULT_ROOT, STORE_ENV, ExperimentStore

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "DEFAULT_ROOT",
    "ExperimentStore",
    "GCReport",
    "LRUCache",
    "RunJournal",
    "RunRecord",
    "STORE_ENV",
    "cache_key",
    "cache_rows",
    "canonical_json",
    "full_result_from_dict",
    "full_result_to_dict",
    "graph_fingerprint",
    "ground_truth_key",
    "journal_rows",
    "load_candidates",
    "load_pools",
    "metrics_from_dict",
    "metrics_to_dict",
    "model_fingerprint",
    "pools_key",
    "preparation_key",
    "render_cache",
    "render_run_detail",
    "render_rows",
    "render_runs",
    "save_candidates",
    "save_pools",
    "study_from_dict",
    "study_key",
    "study_to_dict",
]
