"""Disk formats for the framework's cacheable artifacts.

Arrays (pools, candidate sets) go to single ``.npz`` files with a JSON
metadata blob embedded under a reserved key — the same trick
:mod:`repro.models.io` uses for checkpoints, so every binary artifact in
the store is a self-describing numpy archive.  Result objects (full
evaluations, training studies) are plain JSON: they are small, diffable
and survive refactors of the in-memory dataclasses.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.candidates import CandidateSets
from repro.core.ranking import FullEvaluationResult, Query
from repro.core.sampling import NegativePools
from repro.kg.graph import SIDES, Side
from repro.metrics.ranking import RankingMetrics

_META_KEY = "__meta__"


def _write_npz(path, arrays: dict[str, np.ndarray], meta: dict) -> None:
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    arrays = dict(arrays)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _read_npz(path) -> tuple[dict[str, np.ndarray], dict]:
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{os.fspath(path)} is not a repro store artifact")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        arrays = {key: archive[key] for key in archive.files if key != _META_KEY}
    return arrays, meta


# ----------------------------------------------------------------------
# Negative pools
# ----------------------------------------------------------------------
def save_pools(pools: NegativePools, path) -> None:
    """Persist per-(relation, side) pools as one ``.npz``."""
    arrays = {
        f"{side}:{relation}": pool
        for side in SIDES
        for relation, pool in pools.pools[side].items()
    }
    meta = {
        "artifact": "negative-pools",
        "strategy": pools.strategy,
        "num_entities": pools.num_entities,
        "sample_size": pools.sample_size,
        "build_seconds": pools.build_seconds,
    }
    _write_npz(path, arrays, meta)


def load_pools(path) -> NegativePools:
    """Load a negative-pools artifact written by :func:`save_pools`."""
    arrays, meta = _read_npz(path)
    if meta.get("artifact") != "negative-pools":
        raise ValueError(f"{os.fspath(path)} is not a pools artifact")
    pools: dict[Side, dict[int, np.ndarray]] = {side: {} for side in SIDES}
    for name, array in arrays.items():
        side, relation = name.split(":", 1)
        pools[side][int(relation)] = array.astype(np.int64)
    return NegativePools(
        strategy=meta["strategy"],
        pools=pools,
        num_entities=int(meta["num_entities"]),
        sample_size=int(meta["sample_size"]),
        build_seconds=float(meta["build_seconds"]),
    )


# ----------------------------------------------------------------------
# Static candidate sets
# ----------------------------------------------------------------------
def save_candidates(sets: CandidateSets, path) -> None:
    """Persist thresholded candidate sets (arrays + per-column thresholds)."""
    arrays: dict[str, np.ndarray] = {}
    thresholds: dict[str, dict[str, float]] = {}
    for side in SIDES:
        thresholds[side] = {
            str(relation): value for relation, value in sets.thresholds[side].items()
        }
        for relation, candidates in sets.sets[side].items():
            arrays[f"{side}:{relation}"] = candidates
    meta = {
        "artifact": "candidate-sets",
        "num_entities": sets.num_entities,
        "recommender_name": sets.recommender_name,
        "build_seconds": sets.build_seconds,
        # JSON has no Infinity literal in strict parsers; repr() floats
        # round-trip through json.loads with the default lenient parser.
        "thresholds": thresholds,
    }
    _write_npz(path, arrays, meta)


def load_candidates(path) -> CandidateSets:
    """Load a candidate-sets artifact written by :func:`save_candidates`."""
    arrays, meta = _read_npz(path)
    if meta.get("artifact") != "candidate-sets":
        raise ValueError(f"{os.fspath(path)} is not a candidate-sets artifact")
    sets: dict[Side, dict[int, np.ndarray]] = {side: {} for side in SIDES}
    for name, array in arrays.items():
        side, relation = name.split(":", 1)
        sets[side][int(relation)] = array.astype(np.int64)
    thresholds: dict[Side, dict[int, float]] = {
        side: {
            int(relation): float(value)
            for relation, value in meta["thresholds"][side].items()
        }
        for side in SIDES
    }
    return CandidateSets(
        sets=sets,
        thresholds=thresholds,
        num_entities=int(meta["num_entities"]),
        recommender_name=meta["recommender_name"],
        build_seconds=float(meta["build_seconds"]),
    )


# ----------------------------------------------------------------------
# Ranking metrics and full evaluation results (JSON)
# ----------------------------------------------------------------------
def metrics_to_dict(metrics: RankingMetrics) -> dict:
    """JSON-ready form of :class:`RankingMetrics`."""
    return {
        "mrr": metrics.mrr,
        "hits": {str(k): v for k, v in metrics.hits.items()},
        "mean_rank": metrics.mean_rank,
        "num_queries": metrics.num_queries,
    }


def metrics_from_dict(payload: dict) -> RankingMetrics:
    """Inverse of :func:`metrics_to_dict`."""
    return RankingMetrics(
        mrr=float(payload["mrr"]),
        hits={int(k): float(v) for k, v in payload["hits"].items()},
        mean_rank=float(payload["mean_rank"]),
        num_queries=int(payload["num_queries"]),
    )


def _query_to_str(query: Query) -> str:
    h, r, t, side = query
    return f"{h},{r},{t},{side}"


def _query_from_str(text: str) -> Query:
    h, r, t, side = text.split(",")
    return int(h), int(r), int(t), side


def full_result_to_dict(result: FullEvaluationResult) -> dict:
    """JSON-ready form of a full evaluation (metrics plus per-query ranks)."""
    return {
        "artifact": "full-evaluation",
        "metrics": metrics_to_dict(result.metrics),
        "ranks": {_query_to_str(q): rank for q, rank in result.ranks.items()},
        "seconds": result.seconds,
        "num_scored": result.num_scored,
    }


def full_result_from_dict(payload: dict) -> FullEvaluationResult:
    """Inverse of :func:`full_result_to_dict`; validates the artifact tag."""
    if payload.get("artifact") != "full-evaluation":
        raise ValueError("payload is not a full-evaluation artifact")
    return FullEvaluationResult(
        metrics=metrics_from_dict(payload["metrics"]),
        ranks={
            _query_from_str(text): float(rank)
            for text, rank in payload["ranks"].items()
        },
        seconds=float(payload["seconds"]),
        num_scored=int(payload["num_scored"]),
    )


# ----------------------------------------------------------------------
# Training studies (JSON)
# ----------------------------------------------------------------------
def study_to_dict(study) -> dict:
    """Serialise a :class:`repro.bench.runner.StudyResult`."""
    return {
        "artifact": "training-study",
        "dataset_name": study.dataset_name,
        "model_name": study.model_name,
        "records": [
            {
                "epoch": record.epoch,
                "true_metrics": metrics_to_dict(record.true_metrics),
                "estimated": {
                    strategy: metrics_to_dict(metrics)
                    for strategy, metrics in record.estimated.items()
                },
                "kp_values": record.kp_values,
                "true_seconds": record.true_seconds,
                "estimated_seconds": record.estimated_seconds,
                "kp_seconds": record.kp_seconds,
            }
            for record in study.records
        ],
    }


def study_from_dict(payload: dict):
    """Rebuild a :class:`repro.bench.runner.StudyResult` from JSON."""
    # Imported lazily: repro.bench.runner itself imports this module.
    from repro.bench.runner import EpochEvaluation, StudyResult

    if payload.get("artifact") != "training-study":
        raise ValueError("payload is not a training-study artifact")
    records = [
        EpochEvaluation(
            epoch=int(record["epoch"]),
            true_metrics=metrics_from_dict(record["true_metrics"]),
            estimated={
                strategy: metrics_from_dict(metrics)
                for strategy, metrics in record["estimated"].items()
            },
            kp_values={k: float(v) for k, v in record["kp_values"].items()},
            true_seconds=float(record["true_seconds"]),
            estimated_seconds={
                k: float(v) for k, v in record["estimated_seconds"].items()
            },
            kp_seconds={k: float(v) for k, v in record["kp_seconds"].items()},
        )
        for record in payload["records"]
    ]
    return StudyResult(
        dataset_name=payload["dataset_name"],
        model_name=payload["model_name"],
        records=records,
    )
