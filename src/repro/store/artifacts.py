"""The content-addressed artifact cache behind the experiment store.

Layout on disk (all under the store's ``artifacts/`` root)::

    artifacts/
      <kind>/
        <key[:2]>/
          <key>.<ext>            # payload: .npz (arrays) or .json
          <key>.meta.json        # sidecar: kind, key, format, labels, size

Artifacts are key-addressed: the key is a stable hash of the full
provenance (see :mod:`repro.store.keys`), so a lookup either hits the
exact configuration or misses — there is no invalidation logic to get
wrong.  The two-level fan-out keeps directories small at production
scale.  A :class:`~repro.store.lru.LRUCache` fronts the disk so hot
artifacts (pools reused every epoch) deserialise once per process.

Callers must treat returned artifacts as immutable: the LRU hands back
the same object on repeated hits.
"""

from __future__ import annotations

import json
import os
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.candidates import CandidateSets
from repro.core.sampling import NegativePools
from repro.models.base import KGEModel
from repro.models.io import load_model, save_model
from repro.store.lru import LRUCache
from repro.store.serializers import (
    load_candidates,
    load_pools,
    save_candidates,
    save_pools,
)

_META_SUFFIX = ".meta.json"

#: Payload format per storage method; recorded in the sidecar.
_FORMATS = ("npz", "json")


@dataclass(frozen=True)
class ArtifactInfo:
    """One cache entry as listed by ``entries()`` / ``repro cache ls``."""

    kind: str
    key: str
    format: str
    path: str
    size_bytes: int
    created_at: float
    labels: dict[str, Any]

    def as_row(self) -> dict[str, Any]:
        return {
            "Kind": self.kind,
            "Key": self.key[:12],
            "Format": self.format,
            "Size (KB)": round(self.size_bytes / 1024, 1),
            "Created": time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(self.created_at)
            ),
            "Labels": ", ".join(f"{k}={v}" for k, v in sorted(self.labels.items())),
        }


@dataclass
class GCReport:
    """What ``gc()`` removed: orphaned payloads and dangling sidecars."""

    removed_payloads: list[str]
    removed_sidecars: list[str]
    freed_bytes: int

    @property
    def num_removed(self) -> int:
        return len(self.removed_payloads) + len(self.removed_sidecars)


class ArtifactStore:
    """Key-addressed persistent cache with an in-memory LRU layer."""

    def __init__(self, root: str | os.PathLike[str], max_memory_entries: int = 128):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.memory = LRUCache(max_memory_entries)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _payload_path(self, kind: str, key: str, fmt: str) -> Path:
        if fmt not in _FORMATS:
            raise ValueError(f"unknown artifact format {fmt!r}")
        return self.root / kind / key[:2] / f"{key}.{fmt}"

    def _meta_path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}{_META_SUFFIX}"

    def _find_payload(self, kind: str, key: str) -> Path | None:
        for fmt in _FORMATS:
            path = self._payload_path(kind, key, fmt)
            if path.exists():
                return path
        return None

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def has(self, kind: str, key: str) -> bool:
        """True iff both payload and sidecar are present on disk."""
        return (
            self._meta_path(kind, key).exists()
            and self._find_payload(kind, key) is not None
        )

    def _commit(
        self, kind: str, key: str, fmt: str, labels: dict[str, Any] | None
    ) -> None:
        """Write the sidecar after the payload — a crash leaves an orphan
        payload (collected by ``gc``), never a sidecar pointing nowhere."""
        meta = {
            "kind": kind,
            "key": key,
            "format": fmt,
            "created_at": time.time(),
            "labels": labels or {},
        }
        self._meta_path(kind, key).write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )

    def _prepare_dir(self, kind: str, key: str) -> None:
        (self.root / kind / key[:2]).mkdir(parents=True, exist_ok=True)

    def delete(self, kind: str, key: str) -> bool:
        """Remove one artifact (payload + sidecar + memory entry)."""
        self.memory.discard((kind, key))
        removed = False
        payload = self._find_payload(kind, key)
        if payload is not None:
            payload.unlink()
            removed = True
        meta = self._meta_path(kind, key)
        if meta.exists():
            meta.unlink()
            removed = True
        return removed

    # ------------------------------------------------------------------
    # Typed put/get
    # ------------------------------------------------------------------
    def _replace_payload(self, path: Path, write) -> None:
        """Write via a sibling temp file + atomic rename.

        Concurrent writers of the same key (same provenance, hence same
        bytes) race harmlessly to an identical result, and a crash can
        only leave a ``*.tmp-*`` orphan for ``gc`` — never a torn payload
        under the final name.
        """
        # The temp name keeps the final suffix (np.savez appends ``.npz``
        # to anything else) and stays inside the payload directory so the
        # rename is atomic on one filesystem and ``gc`` can collect strays.
        tmp = path.with_name(f"tmp-{os.getpid()}-{path.name}")
        try:
            write(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def put_json(
        self, kind: str, key: str, payload: Any, labels: dict[str, Any] | None = None
    ) -> None:
        self._prepare_dir(kind, key)
        text = json.dumps(payload, sort_keys=True)
        self._replace_payload(
            self._payload_path(kind, key, "json"),
            lambda tmp: tmp.write_text(text, encoding="utf-8"),
        )
        self._commit(kind, key, "json", labels)
        self.memory.put((kind, key), payload)

    def get_json(self, kind: str, key: str) -> Any | None:
        cached = self.memory.get((kind, key))
        if cached is not None:
            return cached
        path = self._payload_path(kind, key, "json")
        if not path.exists() or not self._meta_path(kind, key).exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            return None  # unreadable payload == miss; the caller recomputes
        self.memory.put((kind, key), payload)
        return payload

    def _put_npz(self, kind, key, obj, writer, labels) -> None:
        self._prepare_dir(kind, key)
        self._replace_payload(
            self._payload_path(kind, key, "npz"), lambda tmp: writer(obj, tmp)
        )
        self._commit(kind, key, "npz", labels)
        self.memory.put((kind, key), obj)

    def _get_npz(self, kind, key, reader) -> Any | None:
        cached = self.memory.get((kind, key))
        if cached is not None:
            return cached
        path = self._payload_path(kind, key, "npz")
        if not path.exists() or not self._meta_path(kind, key).exists():
            return None
        try:
            obj = reader(path)
        except (ValueError, KeyError, OSError, zipfile.BadZipFile):
            return None  # torn/corrupt archive == miss; recomputed on demand
        self.memory.put((kind, key), obj)
        return obj

    def put_model(
        self, key: str, model: KGEModel, labels: dict[str, Any] | None = None
    ) -> None:
        """Persist a trained checkpoint (``repro.models.io`` format)."""
        self._put_npz("model", key, model, save_model, labels)

    def get_model(self, key: str) -> KGEModel | None:
        return self._get_npz("model", key, load_model)

    def put_pools(
        self, key: str, pools: NegativePools, labels: dict[str, Any] | None = None
    ) -> None:
        self._put_npz("pools", key, pools, save_pools, labels)

    def get_pools(self, key: str) -> NegativePools | None:
        return self._get_npz("pools", key, load_pools)

    def put_candidates(
        self, key: str, sets: CandidateSets, labels: dict[str, Any] | None = None
    ) -> None:
        self._put_npz("candidates", key, sets, save_candidates, labels)

    def get_candidates(self, key: str) -> CandidateSets | None:
        return self._get_npz("candidates", key, load_candidates)

    # ------------------------------------------------------------------
    # Listing and garbage collection
    # ------------------------------------------------------------------
    def _iter_meta_paths(self) -> Iterator[Path]:
        yield from sorted(self.root.glob(f"*/??/*{_META_SUFFIX}"))

    def entries(self) -> list[ArtifactInfo]:
        """All intact artifacts, oldest first (corrupt sidecars skipped)."""
        infos: list[ArtifactInfo] = []
        for meta_path in self._iter_meta_paths():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                kind, key, fmt = meta["kind"], meta["key"], meta["format"]
            except (json.JSONDecodeError, KeyError, OSError):
                continue
            payload = self._payload_path(kind, key, fmt)
            if not payload.exists():
                continue
            infos.append(
                ArtifactInfo(
                    kind=kind,
                    key=key,
                    format=fmt,
                    path=str(payload),
                    size_bytes=payload.stat().st_size,
                    created_at=float(meta.get("created_at", 0.0)),
                    labels=dict(meta.get("labels", {})),
                )
            )
        infos.sort(key=lambda info: (info.created_at, info.kind, info.key))
        return infos

    def total_bytes(self) -> int:
        return sum(info.size_bytes for info in self.entries())

    def gc(self) -> GCReport:
        """Remove orphaned payloads and dangling/corrupt sidecars.

        An artifact is orphaned when its write was interrupted: a payload
        without a sidecar (crash between payload and commit) or a sidecar
        whose payload is gone / whose JSON is unreadable.
        """
        removed_payloads: list[str] = []
        removed_sidecars: list[str] = []
        freed = 0
        valid_payloads: set[Path] = set()
        for meta_path in self._iter_meta_paths():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                payload = self._payload_path(meta["kind"], meta["key"], meta["format"])
            except (json.JSONDecodeError, KeyError, OSError):
                freed += meta_path.stat().st_size
                removed_sidecars.append(str(meta_path))
                meta_path.unlink()
                continue
            if payload.exists():
                valid_payloads.add(payload)
            else:
                freed += meta_path.stat().st_size
                removed_sidecars.append(str(meta_path))
                meta_path.unlink()
        for payload in sorted(self.root.glob("*/??/*")):
            if payload.name.endswith(_META_SUFFIX) or not payload.is_file():
                continue
            if payload not in valid_payloads:
                freed += payload.stat().st_size
                removed_payloads.append(str(payload))
                payload.unlink()
        self.memory.clear()
        return GCReport(
            removed_payloads=removed_payloads,
            removed_sidecars=removed_sidecars,
            freed_bytes=freed,
        )

    def __repr__(self) -> str:
        entries = self.entries()
        return (
            f"ArtifactStore({str(self.root)!r}, {len(entries)} artifacts, "
            f"{sum(e.size_bytes for e in entries) / 1024:.1f} KB)"
        )
