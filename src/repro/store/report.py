"""Query/report layer: journal rows and cache listings as table/csv/json.

``repro runs list`` and ``repro cache ls`` both come through here, and the
functions are plain data-in/text-out so notebooks and scripts can reuse
them (mirroring the presenter/TableModel split of linux-benchmark-lib's
journal UI).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Sequence

from repro.store.artifacts import ArtifactStore
from repro.store.journal import RunJournal, RunRecord

FORMATS = ("table", "csv", "json")

#: Metric summary columns surfaced in run listings when present.
_SUMMARY_METRICS = ("mrr", "hits@10")


def run_row(record: RunRecord) -> dict[str, Any]:
    """Flatten one journal record into a listing row."""
    row: dict[str, Any] = {
        "Run": record.run_id,
        "When": record.timestamp,
        "Kind": record.kind,
        "Cache": "hit" if record.cache_hit else "miss",
        "Seconds": round(record.seconds, 3),
    }
    for name in _SUMMARY_METRICS:
        if name in record.metrics:
            row[name.upper() if name == "mrr" else name] = round(
                record.metrics[name], 4
            )
    if record.note:
        row["Note"] = record.note
    return row


def journal_rows(
    journal: RunJournal, limit: int | None = None
) -> list[dict[str, Any]]:
    """Listing rows for the journal, newest last (``limit <= 0``: none)."""
    records = journal.records()
    if limit is not None:
        records = records[-limit:] if limit > 0 else []
    return [run_row(record) for record in records]


def cache_rows(store: ArtifactStore) -> list[dict[str, Any]]:
    """Listing rows for every intact artifact in the cache."""
    return [info.as_row() for info in store.entries()]


def _columns(rows: Sequence[dict[str, Any]]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def render_rows(
    rows: Sequence[dict[str, Any]],
    fmt: str = "table",
    title: str | None = None,
) -> str:
    """Render listing rows in one of :data:`FORMATS`."""
    # Imported lazily: repro.bench pulls in the whole experiment-driver
    # stack (which itself depends on repro.store).
    from repro.bench.tables import render_table

    if fmt not in FORMATS:
        raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
    if fmt == "json":
        return json.dumps(list(rows), indent=2)
    if fmt == "csv":
        buffer = io.StringIO()
        columns = _columns(rows)
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        return buffer.getvalue().rstrip("\n")
    return render_table(list(rows), columns=_columns(rows) or None, title=title)


def render_runs(
    journal: RunJournal,
    fmt: str = "table",
    limit: int | None = None,
) -> str:
    """The ``repro runs list`` body."""
    records = journal.records()  # one replay serves both rows and the title
    shown = records
    if limit is not None:
        shown = records[-limit:] if limit > 0 else []
    rows = [run_row(record) for record in shown]
    title = f"Run journal ({len(records)} runs) — {journal.path}"
    return render_rows(rows, fmt=fmt, title=title if fmt == "table" else None)


def render_run_detail(record: RunRecord) -> str:
    """The ``repro runs show`` body: the full record, pretty-printed.

    Spec-driven runs include their originating ``spec`` JSON — pipe it
    to a file and ``repro run`` it to reproduce the run.  Traced runs
    include their ``obs`` span summary (``repro trace show`` renders it
    as a table).  Records predating either field print byte-identically
    to their original output.
    """
    payload = {
        "run_id": record.run_id,
        "timestamp": record.timestamp,
        "kind": record.kind,
        "cache_hit": record.cache_hit,
        "seconds": record.seconds,
        "config": record.config,
        "metrics": record.metrics,
        "note": record.note,
    }
    if record.spec is not None:
        payload["spec"] = record.spec
    if record.obs is not None:
        payload["obs"] = record.obs
    return json.dumps(payload, indent=2, sort_keys=True)


def render_cache(store: ArtifactStore, fmt: str = "table") -> str:
    """The ``repro cache ls`` body."""
    entries = store.entries()  # one directory scan serves rows and the title
    rows = [info.as_row() for info in entries]
    total_kb = sum(info.size_bytes for info in entries) / 1024
    title = f"Artifact cache ({len(rows)} artifacts, {total_kb:.1f} KB) — {store.root}"
    return render_rows(rows, fmt=fmt, title=title if fmt == "table" else None)
