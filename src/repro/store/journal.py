"""The append-only run journal: every run, one JSONL line.

Each training or evaluation run appends a single JSON object to
``journal.jsonl`` — config, wall-clock, metric summary, whether the
artifact cache served it.  Append-only JSONL is deliberately the whole
format: concurrent writers interleave whole lines, a crash can corrupt at
most the final line, and replay tolerates damaged entries by skipping
them (they are counted, not fatal), so the journal degrades gracefully
instead of bricking the store.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass(frozen=True)
class RunRecord:
    """One journal line: the who/what/how-long of a single run.

    ``spec`` carries the originating declarative spec (its resolved dict
    form) for spec-driven runs — ``repro runs show`` prints it, and
    ``repro run`` of that JSON reproduces the run.  ``obs`` carries the
    aggregated span trace (:meth:`repro.obs.Tracer.summary`) when the
    run executed with tracing enabled — ``repro trace show`` renders it
    back.  Both are optional: runs without them leave the fields
    ``None`` and their journal lines are byte-identical to the
    pre-spec / pre-obs formats.
    """

    run_id: str
    timestamp: str
    kind: str
    config: dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    metrics: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    note: str = ""
    spec: dict[str, Any] | None = None
    obs: dict[str, Any] | None = None

    def to_json(self) -> str:
        payload = {
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "config": self.config,
            "seconds": self.seconds,
            "metrics": self.metrics,
            "cache_hit": self.cache_hit,
            "note": self.note,
        }
        if self.spec is not None:
            payload["spec"] = self.spec
        if self.obs is not None:
            payload["obs"] = self.obs
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        payload = json.loads(line)
        spec = payload.get("spec")
        obs = payload.get("obs")
        return cls(
            run_id=str(payload["run_id"]),
            timestamp=str(payload["timestamp"]),
            kind=str(payload["kind"]),
            config=dict(payload.get("config", {})),
            seconds=float(payload.get("seconds", 0.0)),
            metrics={k: float(v) for k, v in payload.get("metrics", {}).items()},
            cache_hit=bool(payload.get("cache_hit", False)),
            note=str(payload.get("note", "")),
            spec=dict(spec) if isinstance(spec, dict) else None,
            obs=dict(obs) if isinstance(obs, dict) else None,
        )


class RunJournal:
    """Append-only JSONL journal of experiment runs."""

    def __init__(self, path: str | os.PathLike[str]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Corrupt lines seen by the most recent replay.
        self.last_corrupt_count = 0

    def append(
        self,
        kind: str,
        config: dict[str, Any] | None = None,
        seconds: float = 0.0,
        metrics: dict[str, float] | None = None,
        cache_hit: bool = False,
        note: str = "",
        spec: dict[str, Any] | None = None,
        obs: dict[str, Any] | None = None,
    ) -> RunRecord:
        """Record one run; returns the written record (with its run id)."""
        record = RunRecord(
            run_id=uuid.uuid4().hex[:12],
            timestamp=time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime()),
            kind=kind,
            config=config or {},
            seconds=float(seconds),
            metrics=metrics or {},
            cache_hit=cache_hit,
            note=note,
            spec=spec,
            obs=obs,
        )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
        return record

    def _iter_records(self) -> Iterator[RunRecord]:
        self.last_corrupt_count = 0
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield RunRecord.from_json(line)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self.last_corrupt_count += 1

    def records(self) -> list[RunRecord]:
        """Replay the journal, oldest first, skipping corrupt lines."""
        return list(self._iter_records())

    def tail(self, n: int) -> list[RunRecord]:
        """The most recent ``n`` runs, oldest of them first."""
        return self.records()[-n:] if n > 0 else []

    def get(self, run_id: str) -> RunRecord | None:
        """Look a run up by its (possibly abbreviated) id."""
        matches = [
            record
            for record in self._iter_records()
            if record.run_id == run_id or record.run_id.startswith(run_id)
        ]
        if not matches:
            return None
        exact = [record for record in matches if record.run_id == run_id]
        return exact[0] if exact else matches[-1]

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_records())

    def __repr__(self) -> str:
        return f"RunJournal({str(self.path)!r}, {len(self)} runs)"
