"""A small LRU map — the in-memory layer above the on-disk artifact store.

Disk artifacts survive processes; the LRU keeps the hot working set (the
pools and ground truths a study touches every epoch) deserialised, so a
warm loop pays neither recomputation nor repeated ``npz`` parsing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``capacity <= 0`` disables caching entirely (every ``get`` misses),
    which keeps the artifact store usable in memory-constrained callers
    without sprinkling ``if cache is not None`` everywhere.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key not in self._data:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def discard(self, key: Hashable) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return (
            f"LRUCache({len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
