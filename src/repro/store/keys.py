"""Stable cache keys for experiment artifacts.

Every artifact in the store is addressed by a hex digest of its full
provenance: what data it was computed from (graph fingerprint), with what
configuration (strategy, sample size, seeds, hyperparameters) and by which
code path (the ``kind`` label).  Keys are stable across processes and
machines because hashing goes through a canonical JSON form — dict order,
tuple/list distinctions and numpy scalar types never leak into the digest.

Key composition (documented here because it *is* the cache contract):

* ``graph_fingerprint``  — name, vocabulary sizes, split sizes and a
  content hash of the three triple arrays;
* ``model_fingerprint``  — constructor metadata plus a content hash of
  every parameter tensor, so two bit-identical models share ground truth;
* ``preparation_key``    — graph + (recommender, strategy, sample size,
  include_observed, pool seed): the once-per-dataset prepare() artifacts;
* ``pools_key``          — like ``preparation_key`` but per strategy (the
  training-study runner draws all three strategies from one RNG);
* ``ground_truth_key``   — graph + model + (split, hits@K): one full
  filtered-ranking evaluation;
* ``study_key``          — every argument of ``run_training_study``;
* ``experiment_key``     — the resolved dict form of one declarative
  :class:`~repro.experiment.ExperimentSpec` (sweep-variant identity).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np

#: Hex digest length used for artifact keys (128 bits of sha256).
KEY_LENGTH = 32


def canonicalize(value: Any) -> Any:
    """Normalise a value into a JSON-stable form.

    Dicts sort by key, tuples become lists, numpy scalars collapse to
    Python scalars and arrays to nested lists, so logically equal configs
    hash identically no matter how they were built.
    """
    if isinstance(value, Mapping):
        return {str(k): canonicalize(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return canonicalize(value.item())
    if isinstance(value, float):
        # repr() round-trips doubles exactly; f-strings would truncate.
        return float(repr(value))
    return value


def canonical_json(value: Any) -> str:
    """The canonical JSON encoding hashed by :func:`cache_key`."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def cache_key(kind: str, fields: Mapping[str, Any]) -> str:
    """Stable hex key of ``fields`` under a ``kind`` namespace."""
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(b"\n")
    digest.update(canonical_json(fields).encode("utf-8"))
    return digest.hexdigest()[:KEY_LENGTH]


def _array_digest(array: np.ndarray) -> str:
    data = np.ascontiguousarray(array)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


def graph_fingerprint(graph) -> dict[str, Any]:
    """Identity of a :class:`~repro.kg.graph.KnowledgeGraph` as hash fields.

    Includes a content hash of each split's triple array — two graphs with
    the same name but different triples never share artifacts.  The result
    is memoized on the graph object (splits are immutable after
    construction), so per-epoch key computations don't re-hash the
    unchanged triple arrays.
    """
    cached = getattr(graph, "_store_fingerprint", None)
    if cached is not None:
        return cached
    fingerprint = _graph_fingerprint(graph)
    try:
        graph._store_fingerprint = fingerprint
    except AttributeError:
        pass  # slotted/frozen graph variants just recompute
    return fingerprint


def _graph_fingerprint(graph) -> dict[str, Any]:
    return {
        "name": graph.name,
        "num_entities": graph.num_entities,
        "num_relations": graph.num_relations,
        "splits": {
            split: {
                "size": len(getattr(graph, split)),
                "digest": _array_digest(getattr(graph, split).array),
            }
            for split in ("train", "valid", "test")
        },
    }


def model_fingerprint(model) -> str:
    """Content hash of a model: constructor metadata + every parameter.

    Two models score identically iff their parameters are bit-identical,
    so this fingerprint is exactly the right ground-truth cache key: a
    re-trained model with the same seeds hits, a further-trained one
    misses.

    Models attached to mmap shards (``model.shard_source``) fingerprint
    by the shard manifest digest instead — it was computed from the same
    bytes at save time, and re-hashing here would stream the whole
    out-of-core parameter file through memory.  The mmap fingerprint
    therefore differs from the in-memory one for equal parameters; the
    two backends keep separate ground-truth cache entries by design.
    """
    source = getattr(model, "shard_source", None)
    if source is not None:
        return cache_key(
            "model-shards",
            {
                "name": model.name,
                "num_entities": model.num_entities,
                "num_relations": model.num_relations,
                "dim": model.dim,
                "digest": source.digest,
            },
        )
    digest = hashlib.sha256()
    meta = {
        "name": model.name,
        "num_entities": model.num_entities,
        "num_relations": model.num_relations,
        "dim": model.dim,
    }
    digest.update(canonical_json(meta).encode("utf-8"))
    for name in sorted(model.parameters):
        tensor = model.parameters[name]
        digest.update(name.encode("utf-8"))
        digest.update(str(tensor.data.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(tensor.data).tobytes())
    return digest.hexdigest()[:KEY_LENGTH]


# ----------------------------------------------------------------------
# Composed keys for the framework's cacheable stages
# ----------------------------------------------------------------------
def preparation_key(
    graph,
    recommender_name: str,
    strategy: str,
    num_samples: int | None,
    sample_fraction: float | None,
    include_observed: bool,
    seed: int,
) -> str:
    """Key of one ``EvaluationProtocol.prepare()`` artifact bundle."""
    return cache_key(
        "preparation",
        {
            "graph": graph_fingerprint(graph),
            "recommender": recommender_name,
            "strategy": strategy,
            "num_samples": num_samples,
            "sample_fraction": sample_fraction,
            "include_observed": include_observed,
            "seed": seed,
        },
    )


def pools_key(
    graph,
    recommender_name: str,
    strategy: str,
    sample_fraction: float,
    seed: int,
) -> str:
    """Key of one strategy's pools in a training-study preparation."""
    return cache_key(
        "pools",
        {
            "graph": graph_fingerprint(graph),
            "recommender": recommender_name,
            "strategy": strategy,
            "sample_fraction": sample_fraction,
            "seed": seed,
        },
    )


def ground_truth_key(
    graph,
    model,
    split: str,
    hits_at: tuple[int, ...],
) -> str:
    """Key of one full filtered-ranking evaluation (the expensive truth)."""
    return cache_key(
        "ground-truth",
        {
            "graph": graph_fingerprint(graph),
            "model": model_fingerprint(model),
            "split": split,
            "hits_at": list(hits_at),
        },
    )


def experiment_key(spec_fields: Mapping[str, Any]) -> str:
    """Key of one declarative experiment spec (``repro.experiment``).

    Hashes the spec's fully resolved dict form, so two specs that differ
    only in JSON field order or in spelling out defaults share a key,
    and any differing field — a sweep variant's override, a new pool
    seed — produces a new one.
    """
    return cache_key("experiment", dict(spec_fields))


def study_key(graph, **config: Any) -> str:
    """Key of one ``run_training_study`` invocation.

    Covers every argument of the study *and* the dataset content, so a
    regenerated dataset with an unchanged zoo name misses the cache.
    """
    return cache_key(
        "study", {"graph": graph_fingerprint(graph), "config": config}
    )
