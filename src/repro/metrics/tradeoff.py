"""Candidate Recall / Reduction Rate trade-off metrics (paper Section 4.1).

A candidate set for one (relation, side) keeps some entities and filters
the rest.  Two conflicting objectives measure its quality:

* **Candidate Recall (CR)** — fraction of *true* (entity, relation, side)
  combinations whose entity survives the filter; the paper reports CR on
  all test pairs ("Test") and on pairs never seen in train/valid
  ("Unseen");
* **Reduction Rate (RR)** — fraction of the full entity set filtered out.

The static candidate construction picks the per-column threshold minimizing
the Euclidean distance to the ideal point ``(CR, RR) = (1, 1)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TradeoffPoint:
    """One (CR, RR) operating point of a candidate generator.

    Examples
    --------
    >>> point = TradeoffPoint(candidate_recall=0.8, reduction_rate=0.9)
    >>> round(point.distance_to_ideal(), 4)
    0.2236
    """

    candidate_recall: float
    reduction_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.candidate_recall <= 1.0:
            raise ValueError(f"CR must be in [0, 1], got {self.candidate_recall}")
        if not 0.0 <= self.reduction_rate <= 1.0:
            raise ValueError(f"RR must be in [0, 1], got {self.reduction_rate}")

    def distance_to_ideal(self) -> float:
        """l2 distance to the ideal point (1, 1) — lower is better."""
        return math.hypot(1.0 - self.candidate_recall, 1.0 - self.reduction_rate)


def candidate_recall(num_hits: int, num_truths: int) -> float:
    """CR = covered true combinations / all true combinations.

    Examples
    --------
    >>> candidate_recall(num_hits=3, num_truths=4)
    0.75
    >>> candidate_recall(0, 0)  # nothing to recall: vacuous success
    1.0
    """
    if num_truths < 0 or num_hits < 0 or num_hits > num_truths:
        raise ValueError(f"invalid counts hits={num_hits}, truths={num_truths}")
    if num_truths == 0:
        return 1.0
    return num_hits / num_truths


def reduction_rate(kept: int, total: int) -> float:
    """RR = 1 - kept / total (fraction of candidates filtered away).

    Examples
    --------
    >>> reduction_rate(kept=100, total=400)
    0.75
    """
    if total <= 0 or kept < 0 or kept > total:
        raise ValueError(f"invalid counts kept={kept}, total={total}")
    return 1.0 - kept / total
