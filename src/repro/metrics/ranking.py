"""Ranking metrics: ranks, MRR, Hits@K, mean rank, ROC-AUC.

Conventions
-----------
* Ranks are 1-based: the best possible rank is 1.
* "Realistic" rank handling for ties: the rank of the true answer among
  scores ``s`` is ``1 + |better| + |ties| / 2`` (LibKGE's *mean* policy),
  which avoids rewarding models that assign constant scores.
* Filtered metrics remove known true answers (other than the query's own)
  from the candidate list before ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

HITS_AT = (1, 3, 10)


def rank_of(true_score: float, candidate_scores: np.ndarray) -> float:
    """1-based rank of ``true_score`` among ``candidate_scores``.

    ``candidate_scores`` must *exclude* the true answer's own score; ties
    contribute half a position each (mean tie policy).

    Examples
    --------
    >>> import numpy as np
    >>> rank_of(2.0, np.asarray([3.0, 1.0, 0.5]))
    2.0
    >>> rank_of(1.0, np.asarray([1.0, 0.0]))  # one tie counts half
    1.5
    """
    better = float(np.count_nonzero(candidate_scores > true_score))
    ties = float(np.count_nonzero(candidate_scores == true_score))
    return 1.0 + better + ties / 2.0


def ranks_from_score_matrix(
    scores: np.ndarray,
    true_indices: np.ndarray,
    filter_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Ranks of ``true_indices`` per row of a ``(q, n)`` score matrix.

    ``filter_mask`` (same shape, boolean) marks candidates to exclude
    (known true answers); the true answer's own column is never excluded.

    Examples
    --------
    >>> import numpy as np
    >>> scores = np.asarray([[0.9, 0.4, 0.1], [0.2, 0.8, 0.5]])
    >>> ranks_from_score_matrix(scores, np.asarray([0, 2])).tolist()
    [1.0, 2.0]
    >>> mask = np.asarray([[False] * 3, [False, True, False]])
    >>> ranks_from_score_matrix(scores, np.asarray([0, 2]), mask).tolist()
    [1.0, 1.0]
    """
    scores = np.asarray(scores, dtype=np.float64)
    q = scores.shape[0]
    rows = np.arange(q)
    true_scores = scores[rows, true_indices]
    if filter_mask is not None:
        scores = np.where(filter_mask, -np.inf, scores)
        # Ensure the true column survives filtering.
        scores[rows, true_indices] = true_scores
    better = (scores > true_scores[:, None]).sum(axis=1)
    ties = (scores == true_scores[:, None]).sum(axis=1) - 1  # minus self
    return 1.0 + better + ties / 2.0


@dataclass(frozen=True)
class RankingMetrics:
    """Aggregated ranking metrics over a set of queries.

    Examples
    --------
    >>> metrics = aggregate_ranks([1.0, 2.0], hits_at=(1,))
    >>> metrics.hits_at(1)
    0.5
    >>> metrics.as_dict()
    {'mrr': 0.75, 'mean_rank': 1.5, 'hits@1': 0.5}
    >>> metrics.metric("hits@1")
    0.5
    """

    mrr: float
    hits: dict[int, float]
    mean_rank: float
    num_queries: int

    def hits_at(self, k: int) -> float:
        return self.hits[k]

    def as_dict(self) -> dict[str, float]:
        result = {"mrr": self.mrr, "mean_rank": self.mean_rank}
        for k, value in sorted(self.hits.items()):
            result[f"hits@{k}"] = value
        return result

    def metric(self, name: str) -> float:
        """Look up a metric by name (``"mrr"`` or ``"hits@K"``)."""
        if name == "mrr":
            return self.mrr
        if name == "mean_rank":
            return self.mean_rank
        if name.startswith("hits@"):
            return self.hits[int(name.split("@", 1)[1])]
        raise KeyError(f"unknown metric {name!r}")

    def __repr__(self) -> str:
        hits = ", ".join(f"h@{k}={v:.3f}" for k, v in sorted(self.hits.items()))
        return f"RankingMetrics(mrr={self.mrr:.3f}, {hits}, n={self.num_queries})"


def aggregate_ranks(ranks: Iterable[float], hits_at: tuple[int, ...] = HITS_AT) -> RankingMetrics:
    """Aggregate raw ranks into :class:`RankingMetrics`.

    Examples
    --------
    >>> metrics = aggregate_ranks([1.0, 4.0, 10.0])
    >>> metrics.num_queries
    3
    >>> round(metrics.mrr, 3)
    0.45
    >>> metrics.hits_at(10)
    1.0
    """
    array = np.asarray(list(ranks), dtype=np.float64)
    if array.size == 0:
        return RankingMetrics(mrr=0.0, hits={k: 0.0 for k in hits_at}, mean_rank=0.0, num_queries=0)
    if (array < 1.0).any():
        raise ValueError("ranks must be >= 1")
    return RankingMetrics(
        mrr=float(np.mean(1.0 / array)),
        hits={k: float(np.mean(array <= k)) for k in hits_at},
        mean_rank=float(np.mean(array)),
        num_queries=int(array.size),
    )


def merge_metrics(parts: Iterable[RankingMetrics]) -> RankingMetrics:
    """Query-count-weighted merge of per-side / per-batch metrics.

    Examples
    --------
    >>> head = aggregate_ranks([1.0])
    >>> tail = aggregate_ranks([2.0, 2.0, 2.0])
    >>> merge_metrics([head, tail]).mrr
    0.625
    """
    parts = [p for p in parts if p.num_queries > 0]
    if not parts:
        return RankingMetrics(mrr=0.0, hits={k: 0.0 for k in HITS_AT}, mean_rank=0.0, num_queries=0)
    total = sum(p.num_queries for p in parts)
    hits_keys = sorted(set().union(*(p.hits.keys() for p in parts)))
    return RankingMetrics(
        mrr=sum(p.mrr * p.num_queries for p in parts) / total,
        hits={
            k: sum(p.hits.get(k, 0.0) * p.num_queries for p in parts) / total
            for k in hits_keys
        },
        mean_rank=sum(p.mean_rank * p.num_queries for p in parts) / total,
        num_queries=total,
    )


def roc_auc(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """ROC-AUC via the rank-sum (Mann-Whitney) formulation.

    This is the sampled metric some inductive KGC work reports instead of
    full ranking (paper Section 1); exposed here so the framework can
    estimate it over hard negatives as the paper's Section 7 proposes.

    Examples
    --------
    >>> import numpy as np
    >>> roc_auc(np.asarray([0.9, 0.8]), np.asarray([0.1, 0.8]))
    0.875
    """
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need at least one positive and one negative score")
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    return float((wins + 0.5 * ties) / (pos.size * neg.size))


def average_precision(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """Area under the precision-recall curve (average precision).

    Examples
    --------
    >>> import numpy as np
    >>> round(average_precision(np.asarray([0.9, 0.5]), np.asarray([0.7])), 4)
    0.8333
    """
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need at least one positive and one negative score")
    scores = np.concatenate([pos, neg])
    labels = np.concatenate([np.ones(pos.size), np.zeros(neg.size)])
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    cum_pos = np.cumsum(labels)
    precision = cum_pos / np.arange(1, labels.size + 1)
    return float((precision * labels).sum() / pos.size)


def metrics_from_rank_map(
    ranks_by_query: Mapping[tuple[int, int, int], float],
    hits_at: tuple[int, ...] = HITS_AT,
) -> RankingMetrics:
    """Aggregate a ``query -> rank`` mapping (convenience for reports).

    Examples
    --------
    >>> ranks = {(0, 0, 1): 1.0, (2, 0, 3): 3.0}
    >>> round(metrics_from_rank_map(ranks).mrr, 3)
    0.667
    """
    return aggregate_ranks(ranks_by_query.values(), hits_at=hits_at)
