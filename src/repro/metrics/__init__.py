"""Ranking and agreement metrics used across the evaluation framework."""

from repro.metrics.agreement import (
    IntervalEstimate,
    kendall_tau,
    mae,
    mape,
    mean_confidence_interval,
    pearson,
)
from repro.metrics.ranking import (
    HITS_AT,
    RankingMetrics,
    aggregate_ranks,
    average_precision,
    merge_metrics,
    rank_of,
    ranks_from_score_matrix,
    roc_auc,
)
from repro.metrics.tradeoff import TradeoffPoint, candidate_recall, reduction_rate

__all__ = [
    "HITS_AT",
    "IntervalEstimate",
    "RankingMetrics",
    "TradeoffPoint",
    "aggregate_ranks",
    "average_precision",
    "candidate_recall",
    "kendall_tau",
    "mae",
    "mape",
    "mean_confidence_interval",
    "merge_metrics",
    "pearson",
    "rank_of",
    "ranks_from_score_matrix",
    "reduction_rate",
    "roc_auc",
]
