"""Agreement metrics between estimated and true metric series.

The paper evaluates estimators along four axes:

* **Pearson correlation** with the true metric across training epochs
  (Tables 7, 12-14) — does the estimate track the true curve;
* **MAE** (Tables 6, 15) — does the estimate land on the true value;
* **MAPE** with confidence intervals (Figures 4, 5) — relative error as a
  function of sample size;
* **Kendall-tau** of the model ordering per epoch (Table 8) — would model
  selection pick the same winner.

All are implemented here from first principles on numpy arrays (no
dependence on scipy.stats, so behaviour is fully pinned by our tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _paired(a: Sequence[float], b: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"need equal-length 1-D series, got {x.shape} vs {y.shape}")
    return x, y


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs.

    A constant series has undefined correlation; we return 0.0 so the
    experiment tables stay total (matching how the paper reports unstable
    KP correlations rather than dropping rows).

    Examples
    --------
    >>> pearson([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
    1.0
    >>> pearson([1.0, 2.0], [2.0, 1.0])
    -1.0
    >>> pearson([5.0, 5.0], [1.0, 2.0])  # constant series: defined as 0
    0.0
    """
    x, y = _paired(a, b)
    if x.size < 2:
        return 0.0
    xc = x - x.mean()
    yc = y - y.mean()
    denom = math.sqrt(float(xc @ xc) * float(yc @ yc))
    if denom == 0.0:
        return 0.0
    return float(xc @ yc) / denom


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall tau-b rank correlation (tie-corrected).

    tau-b = (C - D) / sqrt((n0 - n1)(n0 - n2)) with C/D the concordant /
    discordant pair counts and n1/n2 tie corrections per series.
    Returns 0.0 when either series is constant.

    Examples
    --------
    >>> kendall_tau([1.0, 2.0, 3.0], [0.1, 0.2, 0.3])
    1.0
    >>> kendall_tau([1.0, 2.0, 3.0], [3.0, 2.0, 1.0])
    -1.0
    >>> kendall_tau([1.0, 1.0], [1.0, 2.0])  # a constant series
    0.0
    """
    x, y = _paired(a, b)
    n = x.size
    if n < 2:
        return 0.0
    concordant = 0
    discordant = 0
    ties_x = 0
    ties_y = 0
    for i in range(n - 1):
        dx = x[i + 1 :] - x[i]
        dy = y[i + 1 :] - y[i]
        sign = np.sign(dx) * np.sign(dy)
        concordant += int(np.count_nonzero(sign > 0))
        discordant += int(np.count_nonzero(sign < 0))
        ties_x += int(np.count_nonzero(dx == 0))
        ties_y += int(np.count_nonzero(dy == 0))
    n0 = n * (n - 1) // 2
    denom = math.sqrt((n0 - ties_x) * (n0 - ties_y))
    if denom == 0.0:
        return 0.0
    return (concordant - discordant) / denom


def mae(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean absolute error of paired estimates.

    Examples
    --------
    >>> mae([1.0, 3.0], [2.0, 2.0])
    1.0
    >>> mae([], [])  # empty series: zero error, tables stay total
    0.0
    """
    x, y = _paired(estimates, truths)
    if x.size == 0:
        return 0.0
    return float(np.mean(np.abs(x - y)))


def mape(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean absolute percentage error (in percent).

    Pairs with a zero truth are skipped (relative error undefined), again
    keeping the sweeps total.

    Examples
    --------
    >>> mape([0.5, 1.5], [1.0, 1.0])
    50.0
    >>> mape([1.0, 7.0], [2.0, 0.0])  # the zero-truth pair is skipped
    50.0
    """
    x, y = _paired(estimates, truths)
    mask = y != 0
    if not mask.any():
        return 0.0
    return float(np.mean(np.abs((x[mask] - y[mask]) / y[mask]))) * 100.0


@dataclass(frozen=True)
class IntervalEstimate:
    """A mean with a symmetric normal-approximation confidence interval.

    Examples
    --------
    >>> interval = IntervalEstimate(mean=0.25, half_width=0.05, num_samples=5)
    >>> round(interval.low, 2), round(interval.high, 2)
    (0.2, 0.3)
    >>> interval
    0.250 ± 0.050 (n=5)
    """

    mean: float
    half_width: float
    num_samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __repr__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.num_samples})"


def mean_confidence_interval(values: Sequence[float], z: float = 1.96) -> IntervalEstimate:
    """Mean with a ``z``-sigma CI half-width (95% by default).

    This is the interval drawn as the shaded band in the paper's Figure 4
    MAPE sweeps (five repeated samplings per point).

    Examples
    --------
    >>> interval = mean_confidence_interval([0.2, 0.4, 0.6], z=1.0)
    >>> round(interval.mean, 3)
    0.4
    >>> round(interval.half_width, 3)
    0.115
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return IntervalEstimate(mean=0.0, half_width=0.0, num_samples=0)
    if array.size == 1:
        return IntervalEstimate(mean=float(array[0]), half_width=0.0, num_samples=1)
    std_err = float(array.std(ddof=1)) / math.sqrt(array.size)
    return IntervalEstimate(
        mean=float(array.mean()), half_width=z * std_err, num_samples=int(array.size)
    )
