"""Structural analysis of knowledge graphs.

Two analyses the paper's discussion leans on:

* **relation cardinality classification** (Section 2's 1-1 / 1-M / M-1 /
  M-M taxonomy) — classified empirically from the training split using
  the classic Bordes et al. criterion (average tails per head and heads
  per tail, thresholded at 1.5).  PT's failure mode lives exactly in the
  1-1 / M-1 head sets and 1-1 / 1-M tail sets this classifier finds;
* **connectivity summary** — component structure of the underlying
  undirected entity graph (via networkx), which bounds what any
  structure-only recommender can see.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.datasets.schema import Cardinality
from repro.kg.graph import HEAD, TAIL, KnowledgeGraph


@dataclass(frozen=True)
class RelationProfile:
    """Empirical shape of one relation in the training split."""

    relation: int
    name: str
    num_triples: int
    tails_per_head: float
    heads_per_tail: float
    cardinality: Cardinality

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "Relation": self.name,
            "Triples": self.num_triples,
            "Tails/head": round(self.tails_per_head, 2),
            "Heads/tail": round(self.heads_per_tail, 2),
            "Class": self.cardinality.value,
        }


def classify_cardinality(
    tails_per_head: float, heads_per_tail: float, threshold: float = 1.5
) -> Cardinality:
    """Bordes et al. (2013) cardinality classification.

    A side is "many" when its average multiplicity exceeds ``threshold``.
    """
    head_many = heads_per_tail > threshold
    tail_many = tails_per_head > threshold
    if head_many and tail_many:
        return Cardinality.MANY_TO_MANY
    if head_many:
        return Cardinality.MANY_TO_ONE
    if tail_many:
        return Cardinality.ONE_TO_MANY
    return Cardinality.ONE_TO_ONE


def relation_profiles(
    graph: KnowledgeGraph, threshold: float = 1.5
) -> list[RelationProfile]:
    """Empirical cardinality profile of every relation (training split)."""
    profiles: list[RelationProfile] = []
    triples = graph.train.array
    for relation in range(graph.num_relations):
        mask = triples[:, 1] == relation
        count = int(mask.sum())
        if count == 0:
            tails_per_head = heads_per_tail = 0.0
        else:
            heads = triples[mask, 0]
            tails = triples[mask, 2]
            tails_per_head = count / np.unique(heads).size
            heads_per_tail = count / np.unique(tails).size
        profiles.append(
            RelationProfile(
                relation=relation,
                name=graph.relations.label_of(relation),
                num_triples=count,
                tails_per_head=float(tails_per_head),
                heads_per_tail=float(heads_per_tail),
                cardinality=classify_cardinality(
                    tails_per_head, heads_per_tail, threshold
                ),
            )
        )
    return profiles


def unseen_candidate_exposure(graph: KnowledgeGraph) -> dict[str, float]:
    """Fraction of test queries whose answer was unseen on its side.

    This is the mass PT structurally misses (its "CR Unseen = 0"): test
    triples whose head was never a training head of the relation, or
    whose tail never a training tail.  Dominated by the 1-1 / 1-M / M-1
    relations, which is why the paper calls PT's limitation "detrimental"
    exactly there.
    """
    exposure = {}
    for side in (HEAD, TAIL):
        total = 0
        unseen = 0
        for h, r, t in graph.test:
            entity = h if side == HEAD else t
            total += 1
            observed = graph.observed(r, side)
            index = int(np.searchsorted(observed, entity))
            if index >= observed.size or int(observed[index]) != entity:
                unseen += 1
        exposure[side] = unseen / total if total else 0.0
    return exposure


@dataclass(frozen=True)
class ConnectivitySummary:
    """Component structure of the undirected entity graph."""

    num_entities: int
    num_components: int
    largest_component: int
    density: float

    def as_row(self) -> dict[str, float | int]:
        return {
            "|E|": self.num_entities,
            "Components": self.num_components,
            "Largest": self.largest_component,
            "Density": round(self.density, 5),
        }


def connectivity_summary(graph: KnowledgeGraph) -> ConnectivitySummary:
    """Component count / giant-component size / density of the train graph."""
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_entities))
    g.add_edges_from(
        (int(h), int(t)) for h, _, t in graph.train
    )
    components = list(nx.connected_components(g))
    largest = max((len(c) for c in components), default=0)
    return ConnectivitySummary(
        num_entities=graph.num_entities,
        num_components=len(components),
        largest_component=largest,
        density=float(nx.density(g)),
    )
