"""TSV input/output for triples and type assignments.

File formats match the de-facto KGC conventions:

* triples: one ``head<TAB>relation<TAB>tail`` per line (FB15k style);
* types: one ``entity<TAB>type`` per line (one line per assignment).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from repro.kg.graph import KnowledgeGraph, build_graph
from repro.kg.typing import TypeStore, build_type_store
from repro.kg.vocabulary import Vocabulary


def read_triples(path: str | os.PathLike[str]) -> list[tuple[str, str, str]]:
    """Read labelled triples from a TSV file; skip blank lines."""
    triples: list[tuple[str, str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}"
                )
            triples.append((parts[0], parts[1], parts[2]))
    return triples


def write_triples(path: str | os.PathLike[str], triples: Iterable[tuple[str, str, str]]) -> None:
    """Write labelled triples to a TSV file."""
    with open(path, "w", encoding="utf-8") as handle:
        for h, r, t in triples:
            handle.write(f"{h}\t{r}\t{t}\n")


def load_graph_dir(directory: str | os.PathLike[str], name: str | None = None) -> KnowledgeGraph:
    """Load ``train.tsv`` / ``valid.tsv`` / ``test.tsv`` from a directory.

    ``valid.tsv`` and ``test.tsv`` are optional; a missing file yields an
    empty split.
    """
    directory = Path(directory)
    splits: dict[str, list[tuple[str, str, str]]] = {}
    for split in ("train", "valid", "test"):
        path = directory / f"{split}.tsv"
        splits[split] = read_triples(path) if path.exists() else []
    if not splits["train"]:
        raise FileNotFoundError(f"no train.tsv with triples found in {directory}")
    return build_graph(splits, name=name or directory.name)


def save_graph_dir(graph: KnowledgeGraph, directory: str | os.PathLike[str]) -> None:
    """Write a graph's splits as ``train/valid/test.tsv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for split_name in ("train", "valid", "test"):
        split = getattr(graph, split_name)
        labelled = (
            (
                graph.entities.label_of(h),
                graph.relations.label_of(r),
                graph.entities.label_of(t),
            )
            for h, r, t in split
        )
        write_triples(directory / f"{split_name}.tsv", labelled)


def read_types(
    path: str | os.PathLike[str],
    entities: Vocabulary,
    strict: bool = False,
) -> TypeStore:
    """Read ``entity<TAB>type`` lines into a :class:`TypeStore`.

    Unknown entities are skipped unless ``strict`` is set, mirroring how
    published type files cover more entities than a benchmark subset.
    """
    assignments: dict[int, list[str]] = {}
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 2 tab-separated fields, got {len(parts)}"
                )
            entity_label, type_label = parts
            entity_id = entities.get(entity_label)
            if entity_id is None:
                if strict:
                    raise KeyError(f"{path}:{line_number}: unknown entity {entity_label!r}")
                continue
            assignments.setdefault(entity_id, []).append(type_label)
    return build_type_store(assignments)


def write_types(
    path: str | os.PathLike[str],
    store: TypeStore,
    entities: Vocabulary,
) -> None:
    """Write a :class:`TypeStore` as ``entity<TAB>type`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for entity_id in sorted(store.assignments):
            for type_id in store.assignments[entity_id]:
                handle.write(
                    f"{entities.label_of(entity_id)}\t{store.types.label_of(type_id)}\n"
                )
