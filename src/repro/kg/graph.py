"""Core knowledge-graph data structures.

A :class:`TripleSet` is an immutable ``(n, 3)`` integer array of
``(head, relation, tail)`` triples with convenience accessors.  A
:class:`KnowledgeGraph` bundles the train/valid/test triple sets with the
entity/relation vocabularies and the index structures the evaluation
framework needs:

* *filter indexes* — for each ``(h, r)`` the set of known true tails across
  all splits (and symmetrically for heads), used by filtered ranking;
* *observed domains & ranges* — for each relation the entities seen as its
  head (domain) or tail (range) in the training split, used by the PT
  recommender and by candidate-recall bookkeeping.

Heads and tails are handled uniformly through the ``side`` argument:
``"head"`` means we predict the head of ``(?, r, t)`` and ``"tail"`` means we
predict the tail of ``(h, r, ?)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal, Mapping

import numpy as np

from repro.kg.vocabulary import Vocabulary

Side = Literal["head", "tail"]

HEAD: Side = "head"
TAIL: Side = "tail"
SIDES: tuple[Side, Side] = (HEAD, TAIL)

#: First vocabulary size that no longer fits an int32 id.
INT32_LIMIT = 2**31


def id_dtype(num_entities: int) -> np.dtype:
    """The narrowest integer dtype that can hold every entity id.

    Entity-valued index buffers (filter-index answers, observed-entity
    sets, the compact triple store) are stored as int32 whenever the
    vocabulary allows it — halving their memory — and fall back to int64
    for vocabularies of ``2**31`` entities or more.
    """
    return np.dtype(np.int32) if num_entities < INT32_LIMIT else np.dtype(np.int64)


def _as_triple_array(triples: Iterable[tuple[int, int, int]] | np.ndarray) -> np.ndarray:
    array = np.asarray(list(triples) if not isinstance(triples, np.ndarray) else triples)
    if array.size == 0:
        return np.empty((0, 3), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 3:
        raise ValueError(f"triples must have shape (n, 3), got {array.shape}")
    return array.astype(np.int64, copy=False)


class TripleSet:
    """An immutable collection of ``(head, relation, tail)`` integer triples."""

    __slots__ = ("_array",)

    def __init__(self, triples: Iterable[tuple[int, int, int]] | np.ndarray):
        array = _as_triple_array(triples)
        array.setflags(write=False)
        self._array = array

    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``(n, 3)`` int64 array."""
        return self._array

    @property
    def heads(self) -> np.ndarray:
        return self._array[:, 0]

    @property
    def relations(self) -> np.ndarray:
        return self._array[:, 1]

    @property
    def tails(self) -> np.ndarray:
        return self._array[:, 2]

    def entities(self, side: Side) -> np.ndarray:
        """Entity column for ``side`` (heads for ``"head"``, tails otherwise)."""
        return self.heads if side == HEAD else self.tails

    def unique_pairs(self, side: Side) -> int:
        """Number of distinct ``(entity, relation)`` pairs on ``side``.

        ``side == "tail"`` counts distinct ``(h, r)`` pairs — the number of
        distinct *tail-prediction* queries — and ``side == "head"`` counts
        distinct ``(r, t)`` pairs.
        """
        anchor = self.heads if side == TAIL else self.tails
        pairs = np.stack([anchor, self.relations], axis=1)
        return int(np.unique(pairs, axis=0).shape[0])

    def subset(self, mask: np.ndarray) -> "TripleSet":
        """A new :class:`TripleSet` of the rows selected by boolean ``mask``."""
        return TripleSet(self._array[mask])

    def concat(self, other: "TripleSet") -> "TripleSet":
        return TripleSet(np.concatenate([self._array, other._array], axis=0))

    def as_tuples(self) -> list[tuple[int, int, int]]:
        return [tuple(int(x) for x in row) for row in self._array]

    def __len__(self) -> int:
        return int(self._array.shape[0])

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        for row in self._array:
            yield int(row[0]), int(row[1]), int(row[2])

    def __contains__(self, triple: object) -> bool:
        if not (isinstance(triple, tuple) and len(triple) == 3):
            return False
        h, r, t = triple
        matches = (
            (self._array[:, 0] == h)
            & (self._array[:, 1] == r)
            & (self._array[:, 2] == t)
        )
        return bool(matches.any())

    def __repr__(self) -> str:
        return f"TripleSet({len(self)} triples)"


@dataclass
class KnowledgeGraph:
    """A knowledge graph with train/valid/test splits and query indexes.

    Parameters
    ----------
    entities, relations:
        Vocabularies; ``num_entities``/``num_relations`` derive from them.
    train, valid, test:
        The three triple splits; ``valid`` and ``test`` may be empty.
    name:
        Human-readable dataset name for reports.
    """

    entities: Vocabulary
    relations: Vocabulary
    train: TripleSet
    valid: TripleSet = field(default_factory=lambda: TripleSet([]))
    test: TripleSet = field(default_factory=lambda: TripleSet([]))
    name: str = "kg"

    def __post_init__(self) -> None:
        self._filter_index: dict[Side, dict[tuple[int, int], np.ndarray]] | None = None
        self._observed: dict[Side, dict[int, np.ndarray]] | None = None
        self._validate()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def all_triples(self) -> TripleSet:
        """Train, valid and test triples concatenated."""
        return self.train.concat(self.valid).concat(self.test)

    def _validate(self) -> None:
        for split_name, split in (("train", self.train), ("valid", self.valid), ("test", self.test)):
            if len(split) == 0:
                continue
            arr = split.array
            if arr[:, [0, 2]].max() >= self.num_entities or arr.min() < 0:
                raise ValueError(f"{split_name} split references entities outside the vocabulary")
            if arr[:, 1].max() >= self.num_relations:
                raise ValueError(f"{split_name} split references relations outside the vocabulary")

    # ------------------------------------------------------------------
    # Filter indexes (filtered ranking)
    # ------------------------------------------------------------------
    def _build_filter_index(self) -> dict[Side, dict[tuple[int, int], np.ndarray]]:
        """Map ``(anchor_entity, relation) -> known true answers`` per side.

        For ``side == "tail"`` the anchor is the head: the index answers
        "which tails are known true for ``(h, r, ?)``" across *all* splits,
        which is exactly the set filtered ranking must exclude (minus the
        query's own answer).
        """
        index: dict[Side, dict[tuple[int, int], list[int]]] = {HEAD: {}, TAIL: {}}
        for h, r, t in self.all_triples:
            index[TAIL].setdefault((h, r), []).append(t)
            index[HEAD].setdefault((t, r), []).append(h)
        dtype = id_dtype(self.num_entities)
        return {
            side: {key: np.unique(np.asarray(vals, dtype=dtype)) for key, vals in mapping.items()}
            for side, mapping in index.items()
        }

    @property
    def filter_index(self) -> dict[Side, dict[tuple[int, int], np.ndarray]]:
        if self._filter_index is None:
            self._filter_index = self._build_filter_index()
        return self._filter_index

    def true_answers(self, anchor: int, relation: int, side: Side) -> np.ndarray:
        """All known true answers for a query, across every split.

        ``side == "tail"``: true tails of ``(anchor, relation, ?)``.
        ``side == "head"``: true heads of ``(?, relation, anchor)``.
        """
        return self.filter_index[side].get((anchor, relation), np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Observed domains & ranges (training split only)
    # ------------------------------------------------------------------
    def _build_observed(self) -> dict[Side, dict[int, np.ndarray]]:
        observed: dict[Side, dict[int, set[int]]] = {HEAD: {}, TAIL: {}}
        for h, r, t in self.train:
            observed[HEAD].setdefault(r, set()).add(h)
            observed[TAIL].setdefault(r, set()).add(t)
        dtype = id_dtype(self.num_entities)
        return {
            side: {r: np.asarray(sorted(vals), dtype=dtype) for r, vals in mapping.items()}
            for side, mapping in observed.items()
        }

    @property
    def observed_entities(self) -> dict[Side, dict[int, np.ndarray]]:
        """Per relation, entities seen in training as its head / tail."""
        if self._observed is None:
            self._observed = self._build_observed()
        return self._observed

    def observed(self, relation: int, side: Side) -> np.ndarray:
        """Entities observed in training on ``side`` of ``relation``."""
        return self.observed_entities[side].get(relation, np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Degree statistics
    # ------------------------------------------------------------------
    def degree_counts(self, side: Side) -> np.ndarray:
        """``(|E|, |R|)`` matrix counting training occurrences per side.

        Entry ``(e, r)`` is the number of training triples in which entity
        ``e`` appears on ``side`` of relation ``r`` — the raw statistic the
        DBH heuristic scores entities with.
        """
        counts = np.zeros((self.num_entities, self.num_relations), dtype=np.int64)
        entities = self.train.entities(side)
        np.add.at(counts, (entities, self.train.relations), 1)
        return counts

    def relation_counts(self) -> np.ndarray:
        """Number of training triples per relation."""
        counts = np.zeros(self.num_relations, dtype=np.int64)
        np.add.at(counts, self.train.relations, 1)
        return counts

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def relabel(self, name: str) -> "KnowledgeGraph":
        """A shallow copy under a different dataset name."""
        return KnowledgeGraph(
            entities=self.entities,
            relations=self.relations,
            train=self.train,
            valid=self.valid,
            test=self.test,
            name=name,
        )

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(name={self.name!r}, |E|={self.num_entities}, "
            f"|R|={self.num_relations}, train={len(self.train)}, "
            f"valid={len(self.valid)}, test={len(self.test)})"
        )


@dataclass
class FilterIndexCSR:
    """The filter index flattened into three arrays per side (CSR form).

    The dict-of-arrays :attr:`KnowledgeGraph.filter_index` is the right
    shape for in-process lookups but cannot cross a process boundary
    without pickling every entry.  This form packs one side into

    * ``keys`` — sorted ``anchor * num_relations + relation`` composite
      keys, one per non-empty ``(anchor, relation)`` pair;
    * ``offsets`` — ``len(keys) + 1`` prefix offsets into ``values``;
    * ``values`` — all known true answers, concatenated in key order.

    All six arrays (two sides) are plain contiguous int64 buffers, so
    they can live in ``multiprocessing.shared_memory`` and be attached
    zero-copy by worker processes (:mod:`repro.engine.shm`).  Lookups
    are one ``searchsorted`` per query — the same answers, byte for
    byte, as :meth:`KnowledgeGraph.true_answers`.
    """

    num_entities: int
    num_relations: int
    keys: dict[Side, np.ndarray]
    offsets: dict[Side, np.ndarray]
    values: dict[Side, np.ndarray]

    @classmethod
    def from_graph(cls, graph: "KnowledgeGraph") -> "FilterIndexCSR":
        """Flatten ``graph.filter_index`` (building it if necessary).

        Graph-like objects that already maintain a CSR index (for example
        the out-of-core :class:`repro.kg.triples.CompactGraph`) can expose
        a ``filter_csr()`` method; it is used directly so the dict index
        is never materialized for large vocabularies.
        """
        maker = getattr(graph, "filter_csr", None)
        if callable(maker):
            return maker()
        keys: dict[Side, np.ndarray] = {}
        offsets: dict[Side, np.ndarray] = {}
        values: dict[Side, np.ndarray] = {}
        num_relations = graph.num_relations
        for side in SIDES:
            mapping = graph.filter_index[side]
            composite = np.asarray(
                [anchor * num_relations + relation for anchor, relation in mapping],
                dtype=np.int64,
            )
            order = np.argsort(composite, kind="stable")
            answer_lists = list(mapping.values())
            keys[side] = composite[order]
            lengths = np.asarray(
                [answer_lists[i].size for i in order], dtype=np.int64
            )
            offsets[side] = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(lengths)]
            )
            values[side] = (
                np.concatenate([answer_lists[i] for i in order])
                if len(order)
                else np.empty(0, dtype=np.int64)
            )
        return cls(
            num_entities=graph.num_entities,
            num_relations=graph.num_relations,
            keys=keys,
            offsets=offsets,
            values=values,
        )

    def true_answers(self, anchor: int, relation: int, side: Side) -> np.ndarray:
        """Known true answers for one query — equal to the dict index's."""
        keys = self.keys[side]
        key = anchor * self.num_relations + relation
        position = int(np.searchsorted(keys, key))
        if position >= keys.size or keys[position] != key:
            return np.empty(0, dtype=np.int64)
        offsets = self.offsets[side]
        return self.values[side][offsets[position] : offsets[position + 1]]

    def arrays(self) -> dict[str, np.ndarray]:
        """The six flat arrays, named for shared-memory export."""
        out: dict[str, np.ndarray] = {}
        for side in SIDES:
            out[f"filter_{side}_keys"] = self.keys[side]
            out[f"filter_{side}_offsets"] = self.offsets[side]
            out[f"filter_{side}_values"] = self.values[side]
        return out

    @classmethod
    def from_arrays(
        cls, num_entities: int, num_relations: int, arrays: Mapping[str, np.ndarray]
    ) -> "FilterIndexCSR":
        """Rebuild a view-backed index from :meth:`arrays` output."""
        return cls(
            num_entities=num_entities,
            num_relations=num_relations,
            keys={side: arrays[f"filter_{side}_keys"] for side in SIDES},
            offsets={side: arrays[f"filter_{side}_offsets"] for side in SIDES},
            values={side: arrays[f"filter_{side}_values"] for side in SIDES},
        )


def build_graph(
    triples_by_split: Mapping[str, Iterable[tuple[str, str, str]]],
    name: str = "kg",
) -> KnowledgeGraph:
    """Build a :class:`KnowledgeGraph` from labelled string triples.

    ``triples_by_split`` maps split names (``"train"``, ``"valid"``,
    ``"test"``) to iterables of ``(head_label, relation_label, tail_label)``.
    Vocabularies are accumulated over all splits in encounter order.
    """
    entities = Vocabulary()
    relations = Vocabulary()
    encoded: dict[str, list[tuple[int, int, int]]] = {"train": [], "valid": [], "test": []}
    for split in ("train", "valid", "test"):
        for h, r, t in triples_by_split.get(split, ()):  # type: ignore[arg-type]
            encoded[split].append((entities.add(h), relations.add(r), entities.add(t)))
    return KnowledgeGraph(
        entities=entities,
        relations=relations,
        train=TripleSet(encoded["train"]),
        valid=TripleSet(encoded["valid"]),
        test=TripleSet(encoded["test"]),
        name=name,
    )
