"""Entity typing substrate.

The paper's typed recommenders (L-WD-T, DBH-T, OntoSim) consume entity type
assignments (Wikidata ``P31`` style).  Real typing data is incomplete and
noisy, and the paper explicitly discusses how that degrades type-based
heuristics, so this module provides both the clean :class:`TypeStore` and
controlled corruption: dropping assignments (incompleteness) and swapping
types (noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np
import scipy.sparse as sp

from repro.kg.vocabulary import Vocabulary


@dataclass
class TypeStore:
    """Entity -> type assignments over dense integer ids.

    Parameters
    ----------
    types:
        Vocabulary of type labels.
    assignments:
        Mapping from entity id to a tuple of type ids.  Entities may carry
        zero, one or several types.
    """

    types: Vocabulary
    assignments: dict[int, tuple[int, ...]]

    @property
    def num_types(self) -> int:
        return len(self.types)

    @property
    def num_assignments(self) -> int:
        """Total number of (entity, type) pairs — ``|TS|`` in the paper."""
        return sum(len(ts) for ts in self.assignments.values())

    def types_of(self, entity: int) -> tuple[int, ...]:
        return self.assignments.get(entity, ())

    def entities_of_type(self, type_id: int) -> np.ndarray:
        """All entity ids carrying ``type_id`` (sorted)."""
        members = [e for e, ts in self.assignments.items() if type_id in ts]
        return np.asarray(sorted(members), dtype=np.int64)

    def membership_matrix(self, num_entities: int) -> sp.csr_matrix:
        """Binary ``|E| x |T|`` sparse matrix of type membership."""
        rows: list[int] = []
        cols: list[int] = []
        for entity, type_ids in self.assignments.items():
            for type_id in type_ids:
                rows.append(entity)
                cols.append(type_id)
        data = np.ones(len(rows), dtype=np.float64)
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(num_entities, self.num_types)
        )

    # ------------------------------------------------------------------
    # Corruption knobs (simulating real-world typing quality)
    # ------------------------------------------------------------------
    def drop_fraction(self, fraction: float, rng: np.random.Generator) -> "TypeStore":
        """Remove ``fraction`` of all (entity, type) pairs uniformly.

        Simulates typing *incompleteness* — entities missing ``P31`` values.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        pairs = [(e, t) for e, ts in self.assignments.items() for t in ts]
        keep = rng.random(len(pairs)) >= fraction
        surviving: dict[int, list[int]] = {}
        for (entity, type_id), kept in zip(pairs, keep):
            if kept:
                surviving.setdefault(entity, []).append(type_id)
        return TypeStore(
            types=self.types,
            assignments={e: tuple(ts) for e, ts in surviving.items()},
        )

    def corrupt_fraction(self, fraction: float, rng: np.random.Generator) -> "TypeStore":
        """Replace ``fraction`` of type assignments with a random wrong type.

        Simulates typing *noise* — erroneous ``P31`` values.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.num_types < 2:
            return self
        corrupted: dict[int, list[int]] = {}
        for entity, type_ids in self.assignments.items():
            new_types: list[int] = []
            for type_id in type_ids:
                if rng.random() < fraction:
                    wrong = int(rng.integers(self.num_types - 1))
                    if wrong >= type_id:
                        wrong += 1
                    new_types.append(wrong)
                else:
                    new_types.append(type_id)
            corrupted[entity] = new_types
        return TypeStore(
            types=self.types,
            assignments={e: tuple(dict.fromkeys(ts)) for e, ts in corrupted.items()},
        )

    def __repr__(self) -> str:
        return (
            f"TypeStore({self.num_types} types, "
            f"{len(self.assignments)} typed entities, "
            f"{self.num_assignments} assignments)"
        )


def build_type_store(
    labelled_assignments: Mapping[int, Iterable[str]],
    types: Vocabulary | None = None,
) -> TypeStore:
    """Build a :class:`TypeStore` from ``entity_id -> type labels``."""
    vocabulary = types if types is not None else Vocabulary()
    assignments: dict[int, tuple[int, ...]] = {}
    for entity, type_labels in labelled_assignments.items():
        assignments[entity] = tuple(vocabulary.add(label) for label in type_labels)
    return TypeStore(types=vocabulary, assignments=assignments)
