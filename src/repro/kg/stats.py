"""Dataset statistics — the columns of the paper's Table 4.

For each dataset the paper reports ``|E|``, ``|R|``, ``|T|``, ``|TS|``,
triple counts per split and the number of distinct (h,r)- & (r,t)-pairs in
train and test.  :func:`dataset_statistics` computes all of them for any
:class:`~repro.kg.graph.KnowledgeGraph` (+ optional
:class:`~repro.kg.typing.TypeStore`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.graph import HEAD, TAIL, KnowledgeGraph, TripleSet
from repro.kg.typing import TypeStore


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 4."""

    name: str
    num_entities: int
    num_relations: int
    num_types: int
    num_type_assignments: int
    train_triples: int
    valid_triples: int
    test_triples: int
    train_pairs: int
    test_pairs: int

    def as_row(self) -> dict[str, int | str]:
        return {
            "Dataset": self.name,
            "|E|": self.num_entities,
            "|R|": self.num_relations,
            "|T|": self.num_types,
            "|TS|": self.num_type_assignments,
            "Train": self.train_triples,
            "Valid": self.valid_triples,
            "Test": self.test_triples,
            "Train pairs": self.train_pairs,
            "Test pairs": self.test_pairs,
        }


def distinct_query_pairs(split: TripleSet) -> int:
    """Number of distinct (h,r)- plus (r,t)-pairs in a split.

    Each distinct pair is one ranking query in the standard protocol, so
    this is the quantity the sampling-complexity analysis (Table 3) counts.
    """
    return split.unique_pairs(TAIL) + split.unique_pairs(HEAD)


def dataset_statistics(
    graph: KnowledgeGraph,
    types: TypeStore | None = None,
) -> DatasetStatistics:
    """Compute the Table 4 row for ``graph`` (+ optional types)."""
    return DatasetStatistics(
        name=graph.name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        num_types=types.num_types if types is not None else 0,
        num_type_assignments=types.num_assignments if types is not None else 0,
        train_triples=len(graph.train),
        valid_triples=len(graph.valid),
        test_triples=len(graph.test),
        train_pairs=distinct_query_pairs(graph.train),
        test_pairs=distinct_query_pairs(graph.test),
    )
