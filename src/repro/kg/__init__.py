"""Knowledge-graph substrate: vocabularies, triples, typing, splits, IO."""

from repro.kg.analysis import (
    ConnectivitySummary,
    RelationProfile,
    classify_cardinality,
    connectivity_summary,
    relation_profiles,
    unseen_candidate_exposure,
)
from repro.kg.graph import (
    HEAD,
    SIDES,
    TAIL,
    FilterIndexCSR,
    KnowledgeGraph,
    Side,
    TripleSet,
    build_graph,
    id_dtype,
)
from repro.kg.triples import (
    CompactGraph,
    build_filter_csr,
    open_compact,
    save_compact,
    unique_rows_in_order,
)
from repro.kg.split import SplitFractions, random_split, split_graph, transductive_split
from repro.kg.stats import DatasetStatistics, dataset_statistics, distinct_query_pairs
from repro.kg.typing import TypeStore, build_type_store
from repro.kg.vocabulary import Vocabulary

__all__ = [
    "HEAD",
    "SIDES",
    "TAIL",
    "CompactGraph",
    "ConnectivitySummary",
    "DatasetStatistics",
    "FilterIndexCSR",
    "KnowledgeGraph",
    "RelationProfile",
    "Side",
    "SplitFractions",
    "TripleSet",
    "TypeStore",
    "Vocabulary",
    "build_filter_csr",
    "build_graph",
    "build_type_store",
    "classify_cardinality",
    "connectivity_summary",
    "dataset_statistics",
    "distinct_query_pairs",
    "id_dtype",
    "open_compact",
    "random_split",
    "save_compact",
    "unique_rows_in_order",
    "relation_profiles",
    "split_graph",
    "transductive_split",
    "unseen_candidate_exposure",
]
