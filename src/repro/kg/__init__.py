"""Knowledge-graph substrate: vocabularies, triples, typing, splits, IO."""

from repro.kg.analysis import (
    ConnectivitySummary,
    RelationProfile,
    classify_cardinality,
    connectivity_summary,
    relation_profiles,
    unseen_candidate_exposure,
)
from repro.kg.graph import (
    HEAD,
    SIDES,
    TAIL,
    KnowledgeGraph,
    Side,
    TripleSet,
    build_graph,
)
from repro.kg.split import SplitFractions, random_split, split_graph, transductive_split
from repro.kg.stats import DatasetStatistics, dataset_statistics, distinct_query_pairs
from repro.kg.typing import TypeStore, build_type_store
from repro.kg.vocabulary import Vocabulary

__all__ = [
    "HEAD",
    "SIDES",
    "TAIL",
    "ConnectivitySummary",
    "DatasetStatistics",
    "KnowledgeGraph",
    "RelationProfile",
    "Side",
    "SplitFractions",
    "TripleSet",
    "TypeStore",
    "Vocabulary",
    "build_graph",
    "build_type_store",
    "classify_cardinality",
    "connectivity_summary",
    "dataset_statistics",
    "distinct_query_pairs",
    "random_split",
    "relation_profiles",
    "split_graph",
    "transductive_split",
    "unseen_candidate_exposure",
]
