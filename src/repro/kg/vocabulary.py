"""Vocabularies mapping symbolic labels to dense integer ids.

Knowledge graphs are manipulated internally as integer arrays; the
:class:`Vocabulary` keeps the bidirectional mapping between human-readable
labels (entity QIDs, relation names, type names) and the contiguous integer
ids used by every array-based component in the library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class Vocabulary:
    """A bidirectional mapping ``label <-> contiguous int id``.

    Ids are assigned in insertion order starting from zero, so a vocabulary
    with ``n`` symbols always uses exactly the ids ``0 .. n-1``.  This is the
    invariant every index structure in :mod:`repro.kg.graph` relies on.
    """

    __slots__ = ("_label_to_id", "_labels")

    def __init__(self, labels: Iterable[str] = ()):
        self._label_to_id: dict[str, int] = {}
        self._labels: list[str] = []
        for label in labels:
            self.add(label)

    def add(self, label: str) -> int:
        """Add ``label`` if missing and return its id."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._label_to_id[label] = new_id
        self._labels.append(label)
        return new_id

    def update(self, labels: Iterable[str]) -> None:
        """Add every label in ``labels`` (idempotent)."""
        for label in labels:
            self.add(label)

    def id_of(self, label: str) -> int:
        """Return the id of ``label``; raise ``KeyError`` if absent."""
        return self._label_to_id[label]

    def get(self, label: str, default: int | None = None) -> int | None:
        """Return the id of ``label`` or ``default`` when absent."""
        return self._label_to_id.get(label, default)

    def label_of(self, index: int) -> str:
        """Return the label of ``index``; raise ``IndexError`` if absent."""
        if index < 0:
            raise IndexError(f"vocabulary ids are non-negative, got {index}")
        return self._labels[index]

    def labels(self) -> Sequence[str]:
        """All labels in id order (read-only view by convention)."""
        return tuple(self._labels)

    def ids_of(self, labels: Iterable[str]) -> list[int]:
        """Map many labels to ids, raising on the first unknown label."""
        return [self._label_to_id[label] for label in labels]

    def __contains__(self, label: object) -> bool:
        return label in self._label_to_id

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._labels == other._labels

    def __repr__(self) -> str:
        preview = ", ".join(self._labels[:4])
        suffix = ", ..." if len(self._labels) > 4 else ""
        return f"Vocabulary({len(self)} symbols: [{preview}{suffix}])"
