"""Train/valid/test splitting of triple collections.

The evaluation framework needs splits with two properties the paper's
datasets have:

* every entity and relation in valid/test also appears in train (so a
  transductive KGC model can score every query), enforced by
  :func:`transductive_split`;
* a controllable share of *unseen* (entity, relation-side) combinations in
  the test split — the "CR Unseen" column of Table 5 measures recall on
  exactly those — which falls out naturally because seen-ness is defined per
  (entity, relation) pair, not per entity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph, TripleSet
from repro.kg.vocabulary import Vocabulary


@dataclass
class SplitFractions:
    """Fractions of triples for valid and test (the rest goes to train)."""

    valid: float = 0.05
    test: float = 0.05

    def __post_init__(self) -> None:
        if self.valid < 0 or self.test < 0 or self.valid + self.test >= 1.0:
            raise ValueError(
                f"invalid split fractions valid={self.valid}, test={self.test}"
            )


def random_split(
    triples: np.ndarray,
    fractions: SplitFractions,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(n, 3)`` triples uniformly at random into train/valid/test."""
    n = triples.shape[0]
    order = rng.permutation(n)
    n_valid = int(round(n * fractions.valid))
    n_test = int(round(n * fractions.test))
    valid_idx = order[:n_valid]
    test_idx = order[n_valid : n_valid + n_test]
    train_idx = order[n_valid + n_test :]
    return triples[train_idx], triples[valid_idx], triples[test_idx]


def transductive_split(
    triples: np.ndarray,
    fractions: SplitFractions,
    rng: np.random.Generator,
    max_repair_passes: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random split repaired so train covers every entity and relation.

    Triples from valid/test that mention an entity or relation with no
    training occurrence are moved back into train, repeating until stable.
    This mirrors how FB15k-style datasets are constructed and guarantees
    transductive models can embed every query.
    """
    train, valid, test = random_split(triples, fractions, rng)
    for _ in range(max_repair_passes):
        seen_entities = set(train[:, 0]) | set(train[:, 2])
        seen_relations = set(train[:, 1])

        def uncovered(split: np.ndarray) -> np.ndarray:
            bad = np.array(
                [
                    (h not in seen_entities)
                    or (t not in seen_entities)
                    or (r not in seen_relations)
                    for h, r, t in split
                ],
                dtype=bool,
            )
            return bad

        bad_valid = uncovered(valid) if len(valid) else np.zeros(0, dtype=bool)
        bad_test = uncovered(test) if len(test) else np.zeros(0, dtype=bool)
        if not bad_valid.any() and not bad_test.any():
            break
        moved = []
        if bad_valid.any():
            moved.append(valid[bad_valid])
            valid = valid[~bad_valid]
        if bad_test.any():
            moved.append(test[bad_test])
            test = test[~bad_test]
        train = np.concatenate([train] + moved, axis=0)
    return train, valid, test


def split_graph(
    entities: Vocabulary,
    relations: Vocabulary,
    triples: np.ndarray,
    fractions: SplitFractions,
    rng: np.random.Generator,
    name: str = "kg",
) -> KnowledgeGraph:
    """Build a :class:`KnowledgeGraph` with a repaired transductive split."""
    train, valid, test = transductive_split(triples, fractions, rng)
    return KnowledgeGraph(
        entities=entities,
        relations=relations,
        train=TripleSet(train),
        valid=TripleSet(valid),
        test=TripleSet(test),
        name=name,
    )
