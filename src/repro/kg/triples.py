"""Compact on-disk triple store for out-of-core evaluation.

A :class:`CompactGraph` is the million-entity counterpart of the in-memory
:class:`~repro.kg.graph.KnowledgeGraph`: the three splits live on disk as
``(n, 3)`` int32 ``.npy`` files (12 bytes per triple) that are memory-mapped
on open, the vocabularies stay on disk as plain label files that are only
read when labels are actually requested, and the filter index is built
**directly in CSR form** with vectorised numpy passes — the dict-of-arrays
index, whose per-key Python objects dominate memory at large vocabularies,
is never materialised.

The store directory layout is::

    manifest.json     format/version, counts, dataset name, ingest stats
    train.npy         (n_train, 3) int32 (int64 when ids do not fit)
    valid.npy         (n_valid, 3)
    test.npy          (n_test, 3)
    entities.txt      one label per line, line i = label of entity id i
    relations.txt     one label per line

Per-query answers from the CSR index are equal, element for element, to
:meth:`KnowledgeGraph.true_answers` on the same triples — both are sorted
unique answer sets — so evaluation ranks are bitwise-identical between the
two graph backends.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.kg.graph import (
    HEAD,
    SIDES,
    FilterIndexCSR,
    KnowledgeGraph,
    Side,
    TripleSet,
    id_dtype,
)

COMPACT_FORMAT = "repro-compact-graph"
COMPACT_VERSION = 1

SPLITS = ("train", "valid", "test")


def unique_rows_in_order(rows: np.ndarray) -> np.ndarray:
    """Drop duplicate rows of an ``(n, k)`` integer array, keeping first
    occurrences in encounter order.

    Works on the raw row bytes (a void view), so it never forms composite
    integer keys that could overflow for very large vocabularies.
    """
    if rows.shape[0] == 0:
        return rows
    contiguous = np.ascontiguousarray(rows)
    void = contiguous.view(
        np.dtype((np.void, contiguous.dtype.itemsize * contiguous.shape[1]))
    ).ravel()
    _, first = np.unique(void, return_index=True)
    return contiguous[np.sort(first)]


def build_filter_csr(
    num_entities: int,
    num_relations: int,
    split_arrays: Sequence[np.ndarray],
) -> FilterIndexCSR:
    """Build the CSR filter index from raw ``(n, 3)`` triple arrays.

    A fully vectorised equivalent of
    :meth:`KnowledgeGraph._build_filter_index` +
    :meth:`FilterIndexCSR.from_graph`: per side, sort the triples by
    ``(anchor * num_relations + relation, answer)``, drop duplicate
    (key, answer) pairs with one shifted comparison, and read the key
    table and offsets off ``np.unique``.  Composite keys are int64 (they
    can exceed int32 even when ids fit), answers use
    :func:`~repro.kg.graph.id_dtype`.
    """
    arrays = [np.asarray(a) for a in split_arrays if np.asarray(a).shape[0]]
    if arrays:
        triples = (
            arrays[0] if len(arrays) == 1 else np.concatenate(arrays, axis=0)
        )
    else:
        triples = np.empty((0, 3), dtype=np.int64)
    value_dtype = id_dtype(num_entities)
    keys: dict[Side, np.ndarray] = {}
    offsets: dict[Side, np.ndarray] = {}
    values: dict[Side, np.ndarray] = {}
    relations = triples[:, 1].astype(np.int64, copy=False)
    for side in SIDES:
        anchor = triples[:, 2] if side == HEAD else triples[:, 0]
        answer = triples[:, 0] if side == HEAD else triples[:, 2]
        composite = anchor.astype(np.int64) * num_relations + relations
        order = np.lexsort((answer, composite))
        composite = composite[order]
        answer = answer[order].astype(value_dtype, copy=False)
        if composite.size:
            fresh = np.ones(composite.size, dtype=bool)
            fresh[1:] = (composite[1:] != composite[:-1]) | (
                answer[1:] != answer[:-1]
            )
            composite = composite[fresh]
            answer = answer[fresh]
        side_keys, counts = np.unique(composite, return_counts=True)
        keys[side] = side_keys
        offsets[side] = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        values[side] = np.ascontiguousarray(answer)
    return FilterIndexCSR(
        num_entities=num_entities,
        num_relations=num_relations,
        keys=keys,
        offsets=offsets,
        values=values,
    )


def _read_labels(path: Path) -> list[str]:
    with path.open("r", encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle]


def _write_labels(path: Path, labels: Sequence[str]) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for label in labels:
            handle.write(label)
            handle.write("\n")


class CompactGraph:
    """A memory-mapped, evaluation-ready view of a compact store directory.

    Duck-types the slice of the :class:`~repro.kg.graph.KnowledgeGraph`
    interface the evaluation engine touches — ``num_entities`` /
    ``num_relations`` / ``name``, the split :class:`TripleSet` properties,
    ``filter_index`` warming and ``true_answers`` — while keeping memory
    flat in the vocabulary size: split arrays are int32 memory maps,
    the filter index is CSR-only, and label files are read lazily.

    ``filter_index`` and ``true_answers`` are served by the CSR index;
    :meth:`FilterIndexCSR.from_graph` short-circuits to :meth:`filter_csr`
    so the shm engine transport publishes the index without any dict
    round-trip.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        manifest_path = self.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != COMPACT_FORMAT:
            raise ValueError(
                f"{manifest_path} is not a {COMPACT_FORMAT} manifest"
            )
        if int(manifest.get("version", 0)) > COMPACT_VERSION:
            raise ValueError(
                f"compact store version {manifest['version']} is newer than "
                f"supported version {COMPACT_VERSION}"
            )
        self.manifest = manifest
        self.name: str = manifest.get("name", self.directory.name)
        self.num_entities: int = int(manifest["num_entities"])
        self.num_relations: int = int(manifest["num_relations"])
        self._splits: dict[str, np.ndarray] = {}
        self._triple_sets: dict[str, TripleSet] = {}
        self._filter_csr: FilterIndexCSR | None = None
        self._entity_labels: list[str] | None = None
        self._relation_labels: list[str] | None = None

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def split_array(self, split: str) -> np.ndarray:
        """The raw ``(n, 3)`` memory-mapped array of one split."""
        if split not in SPLITS:
            raise KeyError(
                f"unknown split {split!r}; expected train, valid or test"
            )
        if split not in self._splits:
            self._splits[split] = np.load(
                self.directory / f"{split}.npy", mmap_mode="r"
            )
        return self._splits[split]

    def _triple_set(self, split: str) -> TripleSet:
        # TripleSet casts to int64; eval splits are small so this is cheap,
        # and the filter index below never goes through TripleSet at all.
        if split not in self._triple_sets:
            self._triple_sets[split] = TripleSet(
                np.asarray(self.split_array(split))
            )
        return self._triple_sets[split]

    @property
    def train(self) -> TripleSet:
        return self._triple_set("train")

    @property
    def valid(self) -> TripleSet:
        return self._triple_set("valid")

    @property
    def test(self) -> TripleSet:
        return self._triple_set("test")

    def num_triples(self, split: str) -> int:
        return int(self.manifest["splits"][split])

    # ------------------------------------------------------------------
    # Filter index (CSR only — the dict index is never built)
    # ------------------------------------------------------------------
    def filter_csr(self) -> FilterIndexCSR:
        """The CSR filter index over all splits, built once, lazily."""
        if self._filter_csr is None:
            self._filter_csr = build_filter_csr(
                self.num_entities,
                self.num_relations,
                [self.split_array(split) for split in SPLITS],
            )
        return self._filter_csr

    @property
    def filter_index(self) -> FilterIndexCSR:
        """CSR index; accessing it warms the index like the dict path."""
        return self.filter_csr()

    def true_answers(self, anchor: int, relation: int, side: Side) -> np.ndarray:
        """Known true answers across all splits — CSR-served."""
        return self.filter_csr().true_answers(anchor, relation, side)

    # ------------------------------------------------------------------
    # Vocabularies (lazy — label files are only read when asked for)
    # ------------------------------------------------------------------
    def entity_labels(self) -> list[str]:
        if self._entity_labels is None:
            self._entity_labels = _read_labels(self.directory / "entities.txt")
        return self._entity_labels

    def relation_labels(self) -> list[str]:
        if self._relation_labels is None:
            self._relation_labels = _read_labels(
                self.directory / "relations.txt"
            )
        return self._relation_labels

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_knowledge_graph(self) -> KnowledgeGraph:
        """Materialise a full in-memory :class:`KnowledgeGraph`.

        Intended for small stores (tests, inspection); this loads the
        vocabularies and casts every split to int64.
        """
        from repro.kg.vocabulary import Vocabulary

        return KnowledgeGraph(
            entities=Vocabulary(self.entity_labels()),
            relations=Vocabulary(self.relation_labels()),
            train=self.train,
            valid=self.valid,
            test=self.test,
            name=self.name,
        )

    def __iter__(self) -> Iterator[str]:  # pragma: no cover — guard
        raise TypeError("CompactGraph is not iterable; use .train/.valid/.test")

    def __repr__(self) -> str:
        splits = self.manifest.get("splits", {})
        return (
            f"CompactGraph(name={self.name!r}, |E|={self.num_entities}, "
            f"|R|={self.num_relations}, "
            + ", ".join(f"{s}={splits.get(s, '?')}" for s in SPLITS)
            + f", dir={str(self.directory)!r})"
        )


def save_compact(
    graph: KnowledgeGraph,
    directory: str | Path,
    stats: Mapping[str, object] | None = None,
) -> Path:
    """Write an in-memory graph as a compact store directory.

    The inverse of :func:`open_compact` for graphs that already fit in
    memory; the streaming ingestion path
    (:func:`repro.datasets.ingest.ingest_directory`) writes the same layout
    without ever holding a full graph.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dtype = id_dtype(graph.num_entities)
    counts: dict[str, int] = {}
    for split in SPLITS:
        array = getattr(graph, split).array
        np.save(directory / f"{split}.npy", array.astype(dtype, copy=False))
        counts[split] = int(array.shape[0])
    _write_labels(directory / "entities.txt", graph.entities.labels())
    _write_labels(directory / "relations.txt", graph.relations.labels())
    manifest = {
        "format": COMPACT_FORMAT,
        "version": COMPACT_VERSION,
        "name": graph.name,
        "num_entities": graph.num_entities,
        "num_relations": graph.num_relations,
        "id_dtype": dtype.name,
        "splits": counts,
    }
    if stats:
        manifest["stats"] = dict(stats)
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return directory


def open_compact(directory: str | Path) -> CompactGraph:
    """Open a compact store directory as a :class:`CompactGraph`."""
    return CompactGraph(directory)
