"""Analysis driver: parse files, run rules, apply suppressions.

:func:`run_analysis` is the single entry point used by the ``repro
lint`` CLI and by the rule tests.  It builds a :class:`ProjectIndex`
over the requested paths, runs every resolved rule's module and
project hooks, filters findings through ``# repro: noqa`` directives,
and returns a :class:`AnalysisReport` with deterministic ordering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .noqa import collect_noqa, is_suppressed
from .project import AnalysisConfig, build_index, discover_files
from .registry import Rule, resolve_rules
from .violations import Violation


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        """The ``repro lint --format json`` payload."""
        return {
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "violations": [v.to_dict() for v in self.violations],
        }


def _syntax_error_violations(
    paths: Iterable[Path], root: Path, indexed: frozenset[str]
) -> list[Violation]:
    """Report files that failed to parse (they are absent from the index)."""
    found: list[Violation] = []
    for path in discover_files(paths):
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        if rel in indexed:
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            found.append(Violation("E000", rel, 1, 0, f"unreadable file: {error}"))
            continue
        try:
            ast.parse(source, filename=str(path))
        except SyntaxError as error:
            found.append(
                Violation(
                    "E000",
                    rel,
                    error.lineno or 1,
                    error.offset or 0,
                    f"syntax error: {error.msg}",
                )
            )
    return found


def run_analysis(
    paths: Sequence[Path],
    root: Path,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    config: AnalysisConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> AnalysisReport:
    """Run the analysis over *paths* and return the report.

    Parameters
    ----------
    paths:
        Files or directories to analyse.
    root:
        Project root; violation paths are reported relative to it.
    select / ignore:
        Rule-code filters (mutually composable: select narrows, then
        ignore removes).
    config:
        Project policy; defaults to this repository's layout.
    rules:
        Pre-instantiated rules, overriding select/ignore resolution —
        used by tests that exercise a single rule instance.
    """
    config = config or AnalysisConfig()
    active = list(rules) if rules is not None else resolve_rules(select, ignore)
    project = build_index(paths, root)

    raw: list[Violation] = []
    for rule in active:
        for module in project:
            raw.extend(rule.check_module(module, project, config))
        raw.extend(rule.check_project(project, config))
    raw.extend(_syntax_error_violations(paths, root, project.rel_paths()))

    # Apply per-line suppressions; count what they hid.
    noqa_by_path = {
        module.rel_path: collect_noqa(module.source) for module in project
    }
    kept: list[Violation] = []
    suppressed = 0
    seen: set[tuple[str, str, int]] = set()
    for violation in sorted(raw, key=Violation.sort_key):
        if violation.key in seen:
            continue
        seen.add(violation.key)
        directives = noqa_by_path.get(violation.path, {})
        if is_suppressed(directives, violation.rule, violation.line):
            suppressed += 1
            continue
        kept.append(violation)

    return AnalysisReport(
        violations=kept,
        suppressed=suppressed,
        files_checked=len(project.modules),
        rules_run=[rule.code for rule in active],
    )
