"""Baseline file handling for ``repro lint``.

The baseline grandfathers known violations: findings whose
``(rule, path, line)`` appear in the baseline are reported as
*baselined* rather than failing the run.  The project's committed
baseline (``analysis-baseline.json``) is required to stay **empty**
— it exists so that, should an emergency ever force a temporary
exception, the debt is visible in review and ``--strict`` (used by
CI) still refuses it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .violations import Violation

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


def load_baseline(path: Path) -> set[tuple[str, str, int]]:
    """Read baseline keys from *path*; missing file means empty."""
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError) as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(payload, dict) or "violations" not in payload:
        raise BaselineError(f"baseline {path} missing 'violations' list")
    entries = payload["violations"]
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} 'violations' is not a list")
    keys: set[tuple[str, str, int]] = set()
    for entry in entries:
        try:
            keys.add((str(entry["rule"]), str(entry["path"]), int(entry["line"])))
        except (KeyError, TypeError, ValueError) as error:
            raise BaselineError(
                f"baseline {path} has malformed entry {entry!r}"
            ) from error
    return keys


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Write *violations* as the new baseline (sorted, stable diffs)."""
    payload = {
        "version": BASELINE_VERSION,
        "violations": [
            {"rule": v.rule, "path": v.path, "line": v.line}
            for v in sorted(violations, key=Violation.sort_key)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    violations: Sequence[Violation], baseline: set[tuple[str, str, int]]
) -> tuple[list[Violation], list[Violation]]:
    """Partition into (new, baselined) against the baseline keys."""
    new: list[Violation] = []
    old: list[Violation] = []
    for violation in violations:
        (old if violation.key in baseline else new).append(violation)
    return new, old
