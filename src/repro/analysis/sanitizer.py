"""Dynamic lock-order / race sanitizer for tests.

The static rule R003 checks the *lexical* lock discipline; this
module checks the *dynamic* half under real test traffic:

* **lock-order inversions** — if one thread ever acquires lock B
  while holding lock A, no thread may acquire A while holding B.
  Inversions are recorded (with both acquisition sites) even when the
  interleaving that would deadlock never fires in this run, which is
  the whole point: the sanitizer turns a probabilistic deadlock into
  a deterministic test failure;
* **unguarded mutations** — shared dicts (a registry's metric table,
  a metric family's series map) wrapped in :class:`GuardedDict` must
  only be mutated while the associated :class:`SanitizedLock` is held
  by the mutating thread.

Usage (what the ``lock_sanitizer`` pytest fixture does)::

    sanitizer = LockSanitizer()
    handle = sanitize_registry(registry, sanitizer)
    try:
        ...  # exercise the code under test
        sanitizer.assert_clean()
    finally:
        handle.restore()

The sanitizer is a test harness: it trades a little per-acquisition
overhead for determinism and must never be installed in production
paths (nothing in ``src/repro`` imports it outside this module).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


def _call_site(depth: int = 2) -> str:
    """``file:line`` of the first caller outside this module."""
    frame = sys._getframe(depth)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


@dataclass(frozen=True)
class SanitizerViolation:
    """One finding: an inversion or an unguarded mutation."""

    kind: str  # "lock-order-inversion" | "unguarded-mutation"
    message: str
    site: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.message} (at {self.site})"


class LockOrderError(AssertionError):
    """Raised by :meth:`LockSanitizer.assert_clean` on any finding."""


@dataclass
class _Edge:
    site: str
    thread: str


class LockSanitizer:
    """Records lock-acquisition order across threads and judges it."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        # (first_name, then_name) -> where/who first established it.
        self._edges: dict[tuple[str, str], _Edge] = {}
        self._held = threading.local()
        self.violations: list[SanitizerViolation] = []

    # -- held-lock bookkeeping (called by SanitizedLock) -----------------
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def notify_acquired(self, name: str) -> None:
        site = _call_site()
        thread = threading.current_thread().name
        stack = self._stack()
        with self._mutex:
            for held in stack:
                if held == name:
                    continue
                edge = (held, name)
                inverse = (name, held)
                if inverse in self._edges and edge not in self._edges:
                    prior = self._edges[inverse]
                    self.violations.append(
                        SanitizerViolation(
                            "lock-order-inversion",
                            f"{held!r} -> {name!r} here, but thread "
                            f"{prior.thread!r} took {name!r} -> {held!r} "
                            f"at {prior.site}",
                            site,
                        )
                    )
                self._edges.setdefault(edge, _Edge(site, thread))
        stack.append(name)

    def notify_released(self, name: str) -> None:
        stack = self._stack()
        if name in stack:
            # Remove the most recent acquisition of this lock; release
            # order need not mirror acquisition order.
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == name:
                    del stack[index]
                    break

    def notify_unguarded(self, message: str) -> None:
        with self._mutex:
            self.violations.append(
                SanitizerViolation("unguarded-mutation", message, _call_site())
            )

    # -- verdicts --------------------------------------------------------
    def edges(self) -> dict[tuple[str, str], str]:
        """Snapshot of the recorded acquisition-order edges."""
        with self._mutex:
            return {pair: edge.site for pair, edge in self._edges.items()}

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderError` listing every finding."""
        with self._mutex:
            findings = list(self.violations)
        if findings:
            detail = "\n".join(f"  - {finding}" for finding in findings)
            raise LockOrderError(
                f"lock sanitizer recorded {len(findings)} violation(s):\n{detail}"
            )


class SanitizedLock:
    """A drop-in lock proxy that reports to a :class:`LockSanitizer`.

    Wraps any object with ``acquire``/``release`` (Lock, RLock).  Also
    tracks the owning thread so :class:`GuardedDict` can ask
    :meth:`held_by_current`.
    """

    def __init__(self, inner: Any, name: str, sanitizer: LockSanitizer) -> None:
        self._inner = inner
        self._name = name
        self._sanitizer = sanitizer
        self._owner: int | None = None
        self._depth = 0

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._depth += 1
            self._sanitizer.notify_acquired(self._name)
        return acquired

    def release(self) -> None:
        self._depth -= 1
        if self._depth <= 0:
            self._owner = None
            self._depth = 0
        self._sanitizer.notify_released(self._name)
        self._inner.release()

    def held_by_current(self) -> bool:
        return self._owner == threading.get_ident()

    def locked(self) -> bool:
        return bool(getattr(self._inner, "locked", lambda: self._owner is not None)())

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class GuardedDict(dict):
    """A dict whose mutations must happen under a given sanitized lock."""

    def __init__(
        self,
        data: dict | None,
        guard: SanitizedLock,
        sanitizer: LockSanitizer,
        label: str,
    ) -> None:
        super().__init__(data or {})
        self._guard = guard
        self._sanitizer = sanitizer
        self._label = label

    def _check(self) -> None:
        if not self._guard.held_by_current():
            self._sanitizer.notify_unguarded(
                f"{self._label} mutated without holding {self._guard.name!r}"
            )

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check()
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._check()
        super().__delitem__(key)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._check()
        return super().setdefault(key, default)

    def pop(self, *args: Any) -> Any:
        self._check()
        return super().pop(*args)

    def popitem(self) -> Any:
        self._check()
        return super().popitem()

    def clear(self) -> None:
        self._check()
        super().clear()

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._check()
        super().update(*args, **kwargs)


@dataclass
class RestoreHandle:
    """Undoes a ``sanitize_*`` call; safe to invoke exactly once."""

    _restores: list[Callable[[], None]] = field(default_factory=list)
    _restored: bool = False

    def add(self, restore: Callable[[], None]) -> None:
        self._restores.append(restore)

    def restore(self) -> None:
        if self._restored:
            return
        self._restored = True
        # Undo in reverse order so nested instrumentation unwinds
        # cleanly.
        for restore in reversed(self._restores):
            restore()


def sanitize_lock_attr(
    obj: Any, attr: str, name: str, sanitizer: LockSanitizer, handle: RestoreHandle
) -> SanitizedLock:
    """Replace ``obj.<attr>`` with a :class:`SanitizedLock` wrapper."""
    original = getattr(obj, attr)
    if isinstance(original, SanitizedLock):
        return original
    wrapped = SanitizedLock(original, name, sanitizer)
    setattr(obj, attr, wrapped)
    handle.add(lambda: setattr(obj, attr, original))
    return wrapped


def _sanitize_metric(
    metric: Any, sanitizer: LockSanitizer, handle: RestoreHandle
) -> None:
    lock = sanitize_lock_attr(
        metric, "_lock", f"{metric.name}._lock", sanitizer, handle
    )
    series = metric._series
    if not isinstance(series, GuardedDict):
        guarded = GuardedDict(series, lock, sanitizer, f"{metric.name}._series")
        metric._series = guarded
        # Restore by downgrading whatever is current back to a plain
        # dict — mutations made while sanitized must survive.
        handle.add(lambda m=metric: setattr(m, "_series", dict(m._series)))


def sanitize_registry(registry: Any, sanitizer: LockSanitizer) -> RestoreHandle:
    """Instrument a :class:`repro.obs.metrics.MetricsRegistry`.

    Wraps the registry lock, guards the metric table, instruments every
    existing metric family, and patches the instance's
    ``_get_or_create`` so families created *after* sanitization are
    instrumented too.
    """
    handle = RestoreHandle()
    registry_lock = sanitize_lock_attr(
        registry, "_lock", "MetricsRegistry._lock", sanitizer, handle
    )
    metrics = registry._metrics
    if not isinstance(metrics, GuardedDict):
        guarded = GuardedDict(
            metrics, registry_lock, sanitizer, "MetricsRegistry._metrics"
        )
        registry._metrics = guarded
        handle.add(
            lambda r=registry: setattr(r, "_metrics", dict(r._metrics))
        )
    for metric in list(registry._metrics.values()):
        _sanitize_metric(metric, sanitizer, handle)

    original_goc = registry._get_or_create

    def instrumented_get_or_create(*args: Any, **kwargs: Any) -> Any:
        metric = original_goc(*args, **kwargs)
        _sanitize_metric(metric, sanitizer, handle)
        return metric

    registry._get_or_create = instrumented_get_or_create
    handle.add(lambda: delattr(registry, "_get_or_create"))
    return handle


def sanitize_tracer(tracer: Any, sanitizer: LockSanitizer) -> RestoreHandle:
    """Instrument a :class:`repro.obs.trace.Tracer`'s shared-tree lock."""
    handle = RestoreHandle()
    sanitize_lock_attr(tracer, "_lock", "Tracer._lock", sanitizer, handle)
    return handle


def sanitize_pool(pool: Any, sanitizer: LockSanitizer) -> RestoreHandle:
    """Instrument a :class:`repro.engine.pool.PersistentWorkerPool` lock."""
    handle = RestoreHandle()
    sanitize_lock_attr(
        pool, "_lock", "PersistentWorkerPool._lock", sanitizer, handle
    )
    return handle


def sanitize_many(
    pairs: Iterable[tuple[Any, str]], sanitizer: LockSanitizer
) -> RestoreHandle:
    """Wrap ``(obj, attr)`` lock attributes in one restorable handle.

    Lock names default to ``ClassName.attr`` — distinct objects of the
    same class share a name, which is what lock-order analysis wants
    (the *role* of the lock defines the ordering contract, not the
    instance).
    """
    handle = RestoreHandle()
    for obj, attr in pairs:
        sanitize_lock_attr(
            obj, attr, f"{type(obj).__name__}.{attr}", sanitizer, handle
        )
    return handle
