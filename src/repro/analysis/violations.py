"""The violation record every analysis rule emits.

A :class:`Violation` is one finding: which rule fired, where
(``path:line:col``), and a human-readable message.  Violations are
plain data — hashable on their identity key ``(rule, path, line)`` so
baseline matching and deduplication are dictionary lookups — and
render to the same JSON shape ``repro lint --format json`` emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Violation:
    """One static-analysis finding.

    Examples
    --------
    >>> v = Violation("R006", "src/x.py", 3, 0, "bare except swallows everything")
    >>> v.location
    'src/x.py:3'
    >>> v.to_dict()["rule"]
    'R006'
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        """``path:line`` — the clickable anchor the CLI prints."""
        return f"{self.path}:{self.line}"

    @property
    def key(self) -> tuple[str, str, int]:
        """The identity used for baseline matching and dedup."""
        return (self.rule, self.path, self.line)

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready form (`repro lint --format json` rows)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
