"""Per-line suppression comments for ``repro lint``.

The project uses its own marker so suppressions are greppable and
cannot be confused with tool-generic ``# noqa`` comments:

``# repro: noqa``
    suppress every rule on this line;
``# repro: noqa[R003]`` / ``# repro: noqa[R001, R006]``
    suppress only the listed rule codes.

Suppressions apply to the physical line a violation is reported on.
"""

from __future__ import annotations

import re
from typing import Mapping

# Matches "# repro: noqa" with an optional bracketed code list.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]+)\])?")

# line number -> frozenset of rule codes, or None meaning "all rules".
NoqaDirectives = Mapping[int, "frozenset[str] | None"]


def collect_noqa(source: str) -> dict[int, frozenset[str] | None]:
    """Scan *source* for suppression comments, keyed by 1-based line.

    >>> directives = collect_noqa("x = 1  # repro: noqa[R001]\\n")
    >>> directives[1]
    frozenset({'R001'})
    >>> collect_noqa("y = 2  # repro: noqa\\n")[1] is None
    True
    """
    directives: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None:
            directives[lineno] = None
        else:
            parsed = frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            )
            # "# repro: noqa[]" suppresses nothing rather than everything.
            directives[lineno] = parsed if parsed else frozenset()
    return directives


def is_suppressed(
    directives: NoqaDirectives, rule: str, line: int
) -> bool:
    """True when *rule* is suppressed on *line* by a noqa directive."""
    if line not in directives:
        return False
    codes = directives[line]
    return codes is None or rule in codes
