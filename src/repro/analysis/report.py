"""Rendering for ``repro lint`` output (table and JSON formats)."""

from __future__ import annotations

import json
from typing import Sequence

from .engine import AnalysisReport
from .registry import iter_rules
from .violations import Violation


def render_json(report: AnalysisReport, *, baselined: int = 0) -> str:
    """Machine-readable report; schema covered by the CLI tests."""
    payload = report.to_dict()
    payload["baselined"] = baselined
    payload["clean"] = not payload["violations"]
    return json.dumps(payload, indent=2)


def render_table(
    violations: Sequence[Violation],
    *,
    files_checked: int,
    suppressed: int,
    baselined: int = 0,
) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [str(violation) for violation in violations]
    summary = (
        f"{len(violations)} violation(s) in {files_checked} file(s)"
        f" [suppressed: {suppressed}, baselined: {baselined}]"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_rule_catalog() -> str:
    """``repro lint --list-rules``: code, name, one-line summary."""
    rows = []
    for rule_cls in iter_rules():
        rows.append(f"{rule_cls.code}  {rule_cls.name}: {rule_cls.summary}")
    return "\n".join(rows)
