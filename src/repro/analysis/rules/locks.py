"""R003 — lock discipline for shared mutable state.

The observability registry and engine pool are mutated from many
threads (HTTP handler threads, the pool's liveness poller, worker
telemetry merges).  The convention is lexical: state that a class
mutates under ``with self._lock`` anywhere must be mutated under that
lock *everywhere*.

The rule infers the guarded set per class rather than hard-coding
attribute names: any ``self.<attr>`` the class ever mutates inside a
``with self.<lock>`` block (where ``self.<lock>`` is assigned a
``threading.Lock/RLock/Condition`` in the class) becomes guarded, and
every other mutation of it is flagged.  Two exemptions keep the rule
honest about real patterns:

* ``__init__`` — construction happens before the object is shared;
* methods whose name contains ``locked`` — the Chromium-style
  "caller holds the lock" naming convention (e.g.
  ``_series_for_locked``), which makes the transfer of lock
  ownership visible at every call site.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

# dict/list/set methods that mutate their receiver.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "update",
        "setdefault",
        "remove",
        "discard",
        "add",
        "appendleft",
    }
)


def _is_lock_factory_call(node: ast.expr) -> bool:
    """True for ``threading.Lock()``, ``Lock()``, ``threading.Condition()``…"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.expr) -> str | None:
    """``self.foo`` -> ``"foo"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_self_attr(node: ast.AST) -> tuple[str, ast.AST] | None:
    """If *node* mutates ``self.<attr>``, return (attr, report_node).

    Covers assignment/augmented assignment to ``self.a`` and
    ``self.a[...]``, ``del self.a[...]``, and calls of mutating
    container methods ``self.a.append(...)`` etc.
    """
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            attr = _self_attr(base)
            if attr is not None:
                return attr, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            attr = _self_attr(base)
            if attr is not None:
                return attr, node
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
        ):
            attr = _self_attr(func.value)
            if attr is not None:
                return attr, node
    return None


class _ClassLockAnalysis:
    """Collects lock attrs, guarded attrs, and mutation sites per class."""

    def __init__(self, class_node: ast.ClassDef) -> None:
        self.class_node = class_node
        self.lock_attrs: set[str] = set()
        # (attr, node, method_name, under_lock)
        self.mutations: list[tuple[str, ast.AST, str, bool]] = []
        self._analyse()

    def _analyse(self) -> None:
        for stmt in self.class_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_lock_attrs(stmt)
        for stmt in self.class_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_mutations(stmt)

    def _collect_lock_attrs(self, method: ast.AST) -> None:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_lock_factory_call(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        self.lock_attrs.add(attr)

    def _collect_mutations(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._walk(method.body, method.name, under_lock=False)

    def _walk(
        self, statements: list[ast.stmt], method_name: str, under_lock: bool
    ) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.With):
                holds = under_lock or any(
                    self._is_lock_ctx(item.context_expr) for item in stmt.items
                )
                self._record_non_body(stmt, method_name, under_lock)
                self._walk(stmt.body, method_name, holds)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested function: conservatively treated as outside
                # the lock (it may run later on another thread).
                self._walk(stmt.body, method_name, under_lock=False)
            elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                self._record_non_body(stmt, method_name, under_lock)
                self._walk(stmt.body, method_name, under_lock)
                self._walk(stmt.orelse, method_name, under_lock)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, method_name, under_lock)
                for handler in stmt.handlers:
                    self._walk(handler.body, method_name, under_lock)
                self._walk(stmt.orelse, method_name, under_lock)
                self._walk(stmt.finalbody, method_name, under_lock)
            else:
                self._record_stmt(stmt, method_name, under_lock)

    def _record_stmt(
        self, stmt: ast.stmt, method_name: str, under_lock: bool
    ) -> None:
        for node in ast.walk(stmt):
            hit = _mutated_self_attr(node)
            if hit is not None:
                attr, report = hit
                self.mutations.append((attr, report, method_name, under_lock))

    def _record_non_body(
        self, stmt: ast.stmt, method_name: str, under_lock: bool
    ) -> None:
        """Record mutations in a compound statement's header expression
        (e.g. the iterable of a for-loop), which shares the enclosing
        lock context."""
        header_exprs: list[ast.expr] = []
        if isinstance(stmt, (ast.If, ast.While)):
            header_exprs.append(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            header_exprs.append(stmt.iter)
        elif isinstance(stmt, ast.With):
            header_exprs.extend(item.context_expr for item in stmt.items)
        for expr in header_exprs:
            for node in ast.walk(expr):
                hit = _mutated_self_attr(node)
                if hit is not None:
                    attr, report = hit
                    self.mutations.append((attr, report, method_name, under_lock))

    def _is_lock_ctx(self, expr: ast.expr) -> bool:
        attr = _self_attr(expr)
        return attr is not None and attr in self.lock_attrs

    def guarded_attrs(self) -> set[str]:
        """Attrs this class ever mutates under one of its locks."""
        return {
            attr
            for attr, _node, method, under in self.mutations
            if under and method != "__init__"
        } - self.lock_attrs

    def unguarded_mutations(self) -> list[tuple[str, ast.AST, str]]:
        guarded = self.guarded_attrs()
        findings = []
        for attr, node, method, under in self.mutations:
            if under or attr not in guarded:
                continue
            if method == "__init__" or "locked" in method:
                continue
            findings.append((attr, node, method))
        return findings


@register
class LockDisciplineRule(Rule):
    code = "R003"
    name = "lock-discipline"
    summary = (
        "state a class mutates under `with self._lock` must be "
        "mutated under that lock everywhere (except __init__ and "
        "*_locked methods)"
    )

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            analysis = _ClassLockAnalysis(node)
            if not analysis.lock_attrs:
                continue
            for attr, site, method in analysis.unguarded_mutations():
                yield Violation(
                    self.code,
                    module.rel_path,
                    getattr(site, "lineno", node.lineno),
                    getattr(site, "col_offset", 0),
                    f"self.{attr} is lock-guarded elsewhere in "
                    f"{node.name} but mutated without the lock in "
                    f"{method}(); hold the lock or rename the method "
                    "*_locked",
                )
