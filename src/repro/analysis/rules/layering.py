"""R004 — import layering for the worker process.

``repro.engine.worker`` runs in every spawned worker process.  Its
transitive import closure is the worker's startup cost and failure
surface: pulling in the HTTP server, the CLI, or the curses dashboard
would slow every pool start, drag extra state across ``spawn``, and
couple the hot path to modules that are free to import heavyweight
dependencies.  The contract (``AnalysisConfig.layering``) says which
roots must not reach which prefixes; the rule builds the project
import graph and reports the first offending edge on every path.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..project import AnalysisConfig, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation


def _matches_prefix(module: str, prefixes: tuple[str, ...]) -> str | None:
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


@register
class ImportLayeringRule(Rule):
    code = "R004"
    name = "import-layering"
    summary = (
        "worker-reachable modules must not import serve/cli/obs.top "
        "(keeps worker processes lean and spawn-safe)"
    )

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterable[Violation]:
        for contract in config.layering:
            root_module = project.get(contract.root)
            if root_module is None:
                continue
            # BFS over project-internal import edges from the root;
            # report the edge that first crosses into forbidden
            # territory (the importer is the module to fix).
            visited = {contract.root}
            queue = deque([root_module])
            while queue:
                module = queue.popleft()
                for edge in project.project_imports(module):
                    prefix = _matches_prefix(edge.target, contract.forbidden)
                    if prefix is not None:
                        yield Violation(
                            self.code,
                            module.rel_path,
                            edge.line,
                            0,
                            f"{module.name} is reachable from "
                            f"{contract.root} but imports {edge.target} "
                            f"(forbidden layer {prefix})",
                        )
                        continue
                    if edge.target in visited:
                        continue
                    visited.add(edge.target)
                    target = project.get(edge.target)
                    if target is not None:
                        queue.append(target)
