"""R005 — determinism in kernel and ranking hot paths.

The configured hot modules (``AnalysisConfig.hot_modules``) compute
the numbers the paper's exactness guarantee is about.  Two classes of
construct are banned there:

* wall-clock reads (``time.time()``, ``datetime.now()`` and friends)
  — timing belongs in the observability layer, where spans and
  metrics already capture it; a wall-clock read in a kernel is either
  dead code or a hidden input;
* iteration over sets (``for x in {...}`` / ``set(...)``), whose
  order varies with hash seeding across processes — a worker-count-
  dependent iteration order is exactly the bug class the engine's
  merge invariants exist to prevent.

``time.perf_counter``/``monotonic`` are *not* flagged: they cannot
leak into results as timestamps and are legitimate for local probes.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation

_WALL_CLOCK = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("datetime", "today"): "datetime.today()",
    ("date", "today"): "date.today()",
}


def _call_head_and_attr(node: ast.Call) -> tuple[str, str] | None:
    """``time.time()`` -> ("time", "time"); ``datetime.datetime.now()``
    -> ("datetime", "now") (the two trailing components)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    value = func.value
    if isinstance(value, ast.Name):
        return value.id, attr
    if isinstance(value, ast.Attribute):
        return value.attr, attr
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in ("set", "frozenset")
    return False


@register
class HotPathDeterminismRule(Rule):
    code = "R005"
    name = "hotpath-determinism"
    summary = (
        "no wall-clock reads or set-order iteration in kernel/ranking "
        "hot paths (order must not depend on hash seeding or time)"
    )

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        if not any(
            module.name == hot or module.name.startswith(hot + ".")
            for hot in config.hot_modules
        ):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                head = _call_head_and_attr(node)
                if head in _WALL_CLOCK:
                    yield Violation(
                        self.code,
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        f"wall-clock read {_WALL_CLOCK[head]} in a hot "
                        "path; timing belongs to the obs layer "
                        "(use spans/metrics), results must not "
                        "depend on time",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield Violation(
                        self.code,
                        module.rel_path,
                        node.lineno,
                        node.col_offset,
                        "iteration over a set in a hot path has "
                        "hash-seed-dependent order; sort it or use a "
                        "list/tuple",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield Violation(
                            self.code,
                            module.rel_path,
                            node.lineno,
                            node.col_offset,
                            "comprehension over a set in a hot path "
                            "has hash-seed-dependent order; sort it "
                            "or use a list/tuple",
                        )
