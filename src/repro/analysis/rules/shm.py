"""R002 — shared-memory create/cleanup pairing.

POSIX shared memory outlives the creating process: a
``SharedMemory(create=True, ...)`` segment that is never unlinked
leaks until reboot (and on Linux counts against ``/dev/shm``).  The
engine's fault model (worker crashes mid-publish, pool shutdown on
exception) means cleanup must be guaranteed on *all* paths, not just
the happy one.

A creation site is sanctioned when any of the following hold:

* it occurs inside a class that defines a ``close``/``unlink``
  method — ownership types such as :class:`repro.engine.shm.ShmArena`
  centralise cleanup there;
* the enclosing function wraps the segment's lifetime in a
  ``try``/``except``/``finally`` whose handler or finaliser calls
  ``.close()`` or ``.unlink()`` on the created object;
* the creation is the context expression of a ``with`` block.

Everything else is a leak waiting for a crash.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation

_CLEANUP_METHODS = frozenset({"close", "unlink"})
_CREATOR_CALLEES = frozenset({"SharedMemory", "ShmArena"})


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_shm_create(node: ast.Call) -> bool:
    name = _callee_name(node)
    if name == "ShmArena":
        return True
    if name == "SharedMemory":
        for keyword in node.keywords:
            if keyword.arg == "create":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False
    return False


def _calls_cleanup(nodes: list[ast.stmt], names: set[str]) -> bool:
    """True when any statement calls ``<name>.close()``/``.unlink()``
    or ``self.close()`` for one of the bound *names*."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _CLEANUP_METHODS:
                continue
            value = func.value
            if isinstance(value, ast.Name) and value.id in names:
                return True
            if isinstance(value, ast.Attribute) and isinstance(
                value.value, ast.Name
            ):
                # self.arena.close() / obj.shm.unlink()
                return True
    return False


class _SiteVisitor(ast.NodeVisitor):
    """Walk one module tracking class/function/with/try context."""

    def __init__(self) -> None:
        self.findings: list[ast.Call] = []
        self._class_has_cleanup: list[bool] = []
        self._function_stack: list[ast.AST] = []
        self._with_exprs: set[int] = set()

    # -- context tracking ------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        has_cleanup = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _CLEANUP_METHODS
            for stmt in node.body
        )
        self._class_has_cleanup.append(has_cleanup)
        self.generic_visit(node)
        self._class_has_cleanup.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self._with_exprs.add(id(item.context_expr))
        self.generic_visit(node)

    # -- the check -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if _is_shm_create(node) and not self._sanctioned(node):
            self.findings.append(node)
        self.generic_visit(node)

    def _sanctioned(self, node: ast.Call) -> bool:
        if self._class_has_cleanup and self._class_has_cleanup[-1]:
            return True
        if id(node) in self._with_exprs:
            return True
        if self._function_stack:
            return _function_guards_cleanup(self._function_stack[-1], node)
        return False


def _function_guards_cleanup(function: ast.AST, creation: ast.Call) -> bool:
    """True when the enclosing function pairs *creation* with cleanup
    in a try handler/finally (the assigned name, or any name when the
    creation isn't bound)."""
    bound = _binding_names(function, creation)
    for node in ast.walk(function):
        if not isinstance(node, ast.Try):
            continue
        cleanup_blocks: list[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup_blocks.extend(handler.body)
        if not cleanup_blocks:
            continue
        if _calls_cleanup(cleanup_blocks, bound):
            return True
    return False


def _binding_names(function: ast.AST, creation: ast.Call) -> set[str]:
    """Names the creation result is assigned to (``arena = ShmArena(...)``)."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and node.value is creation:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if node.value is creation and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


@register
class ShmCleanupRule(Rule):
    code = "R002"
    name = "shm-unlink-pairing"
    summary = (
        "SharedMemory/ShmArena creations must guarantee close/unlink "
        "on every path (owning class, try/finally, or with-block)"
    )

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        visitor = _SiteVisitor()
        visitor.visit(module.tree)
        for call in visitor.findings:
            yield Violation(
                self.code,
                module.rel_path,
                call.lineno,
                call.col_offset,
                "shared-memory creation without guaranteed cleanup; "
                "pair with close()/unlink() in an owning class, "
                "try/finally, or with-block",
            )
