"""R006 — no silently swallowed exceptions.

A worker that dies silently looks exactly like a worker that is slow;
the pool's liveness poller then burns its timeout budget before
replacing it.  The engine's fault model therefore requires every
broad handler to *do something observable*: re-raise, reference the
caught exception (log it, ship it over the result queue), or at
minimum call into some reporting function.

Flagged:

* bare ``except:`` — always;
* ``except Exception:`` / ``except BaseException:`` (alone or in a
  tuple) whose body neither raises, nor references the bound
  exception name, nor makes any call.

Narrow handlers (``except (ValueError, OSError): pass``) encode a
deliberate, reviewable decision about specific failure modes and are
allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation

_BROAD = frozenset({"Exception", "BaseException"})


def _exception_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.Tuple):
        names: list[str] = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    return []


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler neither raises, nor uses the bound
    exception, nor calls anything — i.e. the failure vanishes."""
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return False
        if isinstance(node, ast.Return) and node.value is not None:
            return False
        if bound and isinstance(node, ast.Name) and node.id == bound:
            return False
    return True


@register
class SwallowedExceptionRule(Rule):
    code = "R006"
    name = "swallowed-exception"
    summary = (
        "bare except / silently swallowed Exception-or-broader makes "
        "worker failures invisible; re-raise, log, or report it"
    )

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Violation(
                    self.code,
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    "bare except: catches everything (including "
                    "KeyboardInterrupt) invisibly; name the exception "
                    "types or report the failure",
                )
                continue
            caught = _exception_names(node.type)
            broad = sorted(set(caught) & _BROAD)
            if broad and _body_is_silent(node):
                yield Violation(
                    self.code,
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    f"except {broad[0]} swallows the failure silently; "
                    "re-raise, reference the caught exception, or "
                    "report it (workers that die silently look like "
                    "slow workers)",
                )
