"""R001 — seeded-RNG discipline.

The paper's guarantee (sampled estimators reproduce the full ranking
bitwise at any worker count) only holds because every random draw
flows through an explicitly seeded ``numpy.random.Generator`` that
the call sites thread as an argument.  A single call to the ambient
``np.random.*`` legacy API, ``np.random.default_rng()`` with no seed,
or the stdlib ``random`` module breaks that chain silently: results
still *look* plausible, they just stop being reproducible.

This rule flags any such call outside the configured sanctioned
modules (``AnalysisConfig.rng_sanctioned``; empty for this repo —
even test helpers construct ``default_rng(seed)``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation

# Legacy numpy RNG entry points that consult hidden global state.
_NUMPY_LEGACY = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "binomial",
        "poisson",
        "beta",
        "gamma",
        "exponential",
        "bytes",
        "get_state",
        "set_state",
    }
)

# stdlib `random` functions that consult the module-global Random().
_STDLIB_RANDOM = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical module they refer to.

    Tracks ``import numpy as np`` (np -> numpy), ``import random``
    (random -> random), ``from numpy import random as npr``
    (npr -> numpy.random), and ``from numpy.random import shuffle``
    (shuffle -> numpy.random.shuffle).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and not node.level:
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


def _canonical_call_target(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Resolve a call like ``np.random.shuffle(...)`` to its dotted path."""
    parts: list[str] = []
    current: ast.expr = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    head = aliases.get(current.id)
    if head is None:
        return None
    parts.append(head)
    return ".".join(reversed(parts))


@register
class UnseededRandomRule(Rule):
    code = "R001"
    name = "unseeded-rng"
    summary = (
        "global numpy/stdlib RNG calls break bitwise reproducibility; "
        "thread a seeded numpy Generator instead"
    )

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        if any(
            module.name == prefix or module.name.startswith(prefix + ".")
            for prefix in config.rng_sanctioned
        ):
            return
        aliases = _alias_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _canonical_call_target(node, aliases)
            if target is None:
                continue
            violation = self._classify(target, node)
            if violation is not None:
                yield Violation(
                    self.code,
                    module.rel_path,
                    node.lineno,
                    node.col_offset,
                    violation,
                )

    @staticmethod
    def _classify(target: str, node: ast.Call) -> str | None:
        parts = target.split(".")
        # numpy.random.<legacy fn>()  — hidden global RandomState.
        if (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] in _NUMPY_LEGACY
        ):
            return (
                f"call to global numpy.random.{parts[2]}(); "
                "thread a seeded numpy.random.Generator instead"
            )
        # default_rng() with no arguments seeds from the OS — not
        # reproducible.  default_rng(seed) is the sanctioned pattern.
        if target in ("numpy.random.default_rng", "numpy.default_rng") and not (
            node.args or node.keywords
        ):
            return (
                "numpy.random.default_rng() without a seed is "
                "non-reproducible; pass an explicit seed"
            )
        # stdlib random module.
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
            return (
                f"call to stdlib random.{parts[1]}(); use a seeded "
                "numpy.random.Generator threaded from the caller"
            )
        return None
