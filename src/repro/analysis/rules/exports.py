"""R008 — exported public symbols carry docstrings.

Every ``__init__.py`` ``__all__`` entry is a promise to users of the
package; the project's doctest-audit discipline (tier-1 runs
``--doctest-modules`` over several packages) only bites where a
docstring exists at all.  This rule resolves each exported name to
its definition — a ``def``/``class`` in the ``__init__`` itself, or
one reached through a ``from .module import name`` — and flags
definitions without a docstring.

Names that cannot be resolved inside the analysed file set
(re-exports of constants, third-party objects, or modules outside
the lint scope) are skipped: the rule reports missing docstrings, not
missing resolution power.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation


def _exported_names(module: ModuleInfo) -> list[str]:
    """String entries of a top-level ``__all__`` list/tuple literal."""
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            return [
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
    return []


def _top_level_defs(
    module: ModuleInfo,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef]:
    defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defs[node.name] = node
    return defs


def _import_sources(module: ModuleInfo, project: ProjectIndex) -> dict[str, str]:
    """Exported-name -> dotted source module, from ``from X import name``."""
    sources: dict[str, str] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.level:
            base_parts = module.name.split(".")
            strip = node.level - 1 if module.is_package else node.level
            if len(base_parts) < strip:
                continue
            base = ".".join(base_parts[: len(base_parts) - strip])
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        else:
            base = node.module or ""
        if not base:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            sources[alias.asname or alias.name] = base
    return sources


@register
class ExportDocstringRule(Rule):
    code = "R008"
    name = "export-docstrings"
    summary = (
        "symbols exported via __all__ in __init__.py must have "
        "docstrings (they are the package's public API)"
    )

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        if not module.is_package:
            return
        exported = _exported_names(module)
        if not exported:
            return
        local_defs = _top_level_defs(module)
        sources = _import_sources(module, project)
        for name in exported:
            definition = local_defs.get(name)
            def_module = module
            if definition is None:
                source_name = sources.get(name)
                if source_name is None:
                    continue
                source_module = project.get(source_name)
                if source_module is None:
                    continue
                definition = _top_level_defs(source_module).get(name)
                def_module = source_module
            if definition is None:
                continue
            if ast.get_docstring(definition) is None:
                yield Violation(
                    self.code,
                    def_module.rel_path,
                    definition.lineno,
                    definition.col_offset,
                    f"{name} is exported from {module.name}.__all__ "
                    "but has no docstring",
                )
