"""Built-in analysis rules.

Importing this package registers every rule with the registry in
:mod:`repro.analysis.registry`.  Each module holds one rule (plus its
helpers) and documents the invariant it guards and why the project
cares.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effect)
    excepts,
    exports,
    hotpath,
    layering,
    locks,
    metrics_docs,
    rng,
    shm,
)

__all__ = [
    "excepts",
    "exports",
    "hotpath",
    "layering",
    "locks",
    "metrics_docs",
    "rng",
    "shm",
]
