"""R007 — metric names and the observability docs must agree.

``docs/observability.md`` carries the table operators grep when a
dashboard shows an unfamiliar series.  Metric names registered in
code but absent from the docs are invisible to operators; names in
the docs but absent from code are stale promises.  This rule extracts
both sets and flags the symmetric difference.

Code-side collection covers the three registration idioms the repo
uses:

* literal first arguments of ``.counter("repro_…")`` /
  ``.gauge(…)`` / ``.histogram(…)`` calls;
* module constants named ``*_COUNTER`` / ``*_GAUGE`` /
  ``*_HISTOGRAM`` assigned a ``"repro_…"`` literal;
* keys of dict literals assigned to names containing
  ``COUNTER_HELP`` (the worker-telemetry help tables).

Docs-side names are ``repro_[a-z0-9_]+`` tokens; tokens ending in an
underscore (prose prefix mentions like ``repro_engine_``) are
ignored.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..project import AnalysisConfig, ModuleInfo, ProjectIndex
from ..registry import Rule, register
from ..violations import Violation

_REGISTRATION_METHODS = frozenset({"counter", "gauge", "histogram"})
_CONSTANT_SUFFIX = re.compile(r"_(COUNTER|GAUGE|HISTOGRAM)$")
_METRIC_NAME = re.compile(r"^repro_[a-z0-9_]+$")
# Negative lookbehind: `.repro_store` (a filesystem path) and
# `xrepro_foo` (an identifier fragment) are not metric mentions.
_DOC_TOKEN = re.compile(r"(?<![\w.])repro_[a-z0-9_]+")


def _code_metric_sites(module: ModuleInfo) -> list[tuple[str, int]]:
    """(metric_name, line) pairs registered in *module*."""
    sites: list[tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _REGISTRATION_METHODS
                and node.args
            ):
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and _METRIC_NAME.match(first.value)
                ):
                    sites.append((first.value, node.lineno))
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if node.value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _CONSTANT_SUFFIX.search(target.id):
                    value = node.value
                    if (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and _METRIC_NAME.match(value.value)
                    ):
                        sites.append((value.value, node.lineno))
                if "COUNTER_HELP" in target.id and isinstance(
                    node.value, ast.Dict
                ):
                    for key in node.value.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and _METRIC_NAME.match(key.value)
                        ):
                            sites.append((key.value, key.lineno))
    return sites


def _doc_metric_names(text: str) -> dict[str, int]:
    """Metric tokens in the docs page, mapped to first line seen."""
    names: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for token in _DOC_TOKEN.findall(line):
            if token.endswith("_"):
                continue
            names.setdefault(token, lineno)
    return names


@register
class MetricsDocsParityRule(Rule):
    code = "R007"
    name = "metrics-docs-parity"
    summary = (
        "every repro_* metric registered in code must appear in "
        "docs/observability.md and vice versa"
    )

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterable[Violation]:
        code_sites: dict[str, tuple[str, int]] = {}
        for module in project:
            for name, line in _code_metric_sites(module):
                code_sites.setdefault(name, (module.rel_path, line))
        docs_path = project.root / config.metrics_docs
        if not docs_path.exists():
            if code_sites:
                first = min(code_sites.items(), key=lambda kv: kv[1])
                yield Violation(
                    self.code,
                    first[1][0],
                    first[1][1],
                    0,
                    f"metrics are registered but {config.metrics_docs} "
                    "does not exist; document every repro_* series",
                )
            return
        doc_names = _doc_metric_names(
            docs_path.read_text(encoding="utf-8")
        )
        for name in sorted(set(code_sites) - set(doc_names)):
            path, line = code_sites[name]
            yield Violation(
                self.code,
                path,
                line,
                0,
                f"metric {name} is registered here but missing from "
                f"{config.metrics_docs}; add it to the metrics table",
            )
        for name in sorted(set(doc_names) - set(code_sites)):
            yield Violation(
                self.code,
                config.metrics_docs,
                doc_names[name],
                0,
                f"metric {name} is documented but never registered "
                "in code; remove the stale row or restore the metric",
            )
