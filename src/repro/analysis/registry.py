"""Rule-plugin registry for the static-analysis engine.

A rule is a class with ``code``/``name``/``summary`` attributes and
one or both hooks:

``check_module(module, project, config)``
    called once per analysed file — most rules live here;
``check_project(project, config)``
    called once with the whole index — for cross-file rules such as
    import layering (R004) and metrics/docs parity (R007).

Rules self-register via the :func:`register` decorator; the CLI and
tests resolve them with :func:`resolve_rules` which honours
``--select`` / ``--ignore``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .project import AnalysisConfig, ModuleInfo, ProjectIndex
from .violations import Violation


class Rule:
    """Base class for analysis rules; subclass and :func:`register`."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_module(
        self,
        module: ModuleInfo,
        project: ProjectIndex,
        config: AnalysisConfig,
    ) -> Iterable[Violation]:
        """Per-file hook; default: nothing."""
        return ()

    def check_project(
        self, project: ProjectIndex, config: AnalysisConfig
    ) -> Iterable[Violation]:
        """Whole-project hook; default: nothing."""
        return ()


_RULES: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding *rule_cls* to the registry.

    Codes must be unique — a duplicate registration is a programming
    error, not a configuration one, so it raises immediately.
    """
    code = rule_cls.code
    if not code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if code in _RULES and _RULES[code] is not rule_cls:
        raise ValueError(f"duplicate rule code {code!r}")
    _RULES[code] = rule_cls
    return rule_cls


def all_rule_codes() -> list[str]:
    """Sorted codes of every registered rule."""
    _ensure_builtin_rules()
    return sorted(_RULES)


def iter_rules() -> Iterator[type[Rule]]:
    """Registered rule classes in code order."""
    _ensure_builtin_rules()
    for code in sorted(_RULES):
        yield _RULES[code]


class UnknownRuleError(ValueError):
    """Raised when ``--select``/``--ignore`` names an unknown code."""


def resolve_rules(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Rule]:
    """Instantiate the rules to run, honouring select/ignore lists."""
    _ensure_builtin_rules()
    known = set(_RULES)
    for code in list(select or []) + list(ignore or []):
        if code not in known:
            raise UnknownRuleError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(known))}"
            )
    chosen = set(select) if select else known
    chosen -= set(ignore or [])
    return [_RULES[code]() for code in sorted(chosen)]


def _ensure_builtin_rules() -> None:
    """Import the built-in rule modules so they self-register."""
    from . import rules  # noqa: F401  (import for side effect)
