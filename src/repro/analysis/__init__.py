"""Project-specific static analysis and concurrency sanitizing.

``repro.analysis`` makes the repository's correctness conventions —
seeded-RNG discipline, shm create/unlink pairing, lock discipline,
worker import layering, hot-path determinism, metric/doc parity,
export docstrings — *machine-checked properties* instead of review
lore.  Two halves:

* the **static engine** (:func:`run_analysis` + the rule plugins in
  :mod:`repro.analysis.rules`), surfaced as ``repro lint``;
* the **dynamic sanitizer** (:mod:`repro.analysis.sanitizer`), a
  test-mode lock-order/race harness wired into tier-1 through the
  ``lock_sanitizer`` pytest fixture.

See ``docs/analysis.md`` for the rule catalog and rationale.
"""

from __future__ import annotations

from .baseline import load_baseline, split_by_baseline, write_baseline
from .engine import AnalysisReport, run_analysis
from .noqa import collect_noqa, is_suppressed
from .project import AnalysisConfig, LayeringContract, ModuleInfo, ProjectIndex, build_index
from .registry import Rule, UnknownRuleError, all_rule_codes, iter_rules, register, resolve_rules
from .sanitizer import (
    GuardedDict,
    LockOrderError,
    LockSanitizer,
    RestoreHandle,
    SanitizedLock,
    sanitize_lock_attr,
    sanitize_many,
    sanitize_pool,
    sanitize_registry,
    sanitize_tracer,
)
from .violations import Violation

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "GuardedDict",
    "LayeringContract",
    "LockOrderError",
    "LockSanitizer",
    "ModuleInfo",
    "ProjectIndex",
    "RestoreHandle",
    "Rule",
    "SanitizedLock",
    "UnknownRuleError",
    "Violation",
    "all_rule_codes",
    "build_index",
    "collect_noqa",
    "is_suppressed",
    "iter_rules",
    "load_baseline",
    "register",
    "resolve_rules",
    "run_analysis",
    "sanitize_lock_attr",
    "sanitize_many",
    "sanitize_pool",
    "sanitize_registry",
    "sanitize_tracer",
    "split_by_baseline",
    "write_baseline",
]
