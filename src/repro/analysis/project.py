"""Project model for the static-analysis engine.

Rules see the codebase through two objects:

:class:`ModuleInfo`
    one parsed file — dotted module name, source text, parsed AST,
    source lines, and the outgoing import edges with their line
    numbers;
:class:`ProjectIndex`
    the whole analysed file set — module lookup by dotted name and
    the import graph rules like R004 traverse.

:class:`AnalysisConfig` carries the project-policy knobs (which
modules are RNG-sanctioned, which are hot paths, the layering
contracts, where the metrics docs live) so tests can point the
engine at synthetic trees without editing rule code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class LayeringContract:
    """``root`` (a dotted module) must not reach ``forbidden`` prefixes."""

    root: str
    forbidden: tuple[str, ...]


@dataclass(frozen=True)
class AnalysisConfig:
    """Project policy consumed by the rules.

    Every field has a default matching this repository's layout, and
    every field can be overridden — the rule tests build miniature
    projects in temporary directories and swap in their own module
    names.
    """

    #: Module prefixes allowed to call seeding entry points directly
    #: (R001).  Empty by default: all of ``src/repro`` must thread a
    #: ``numpy.random.Generator``.
    rng_sanctioned: tuple[str, ...] = ()

    #: Hot-path modules where wall-clock reads and set-order iteration
    #: are forbidden (R005).
    hot_modules: tuple[str, ...] = (
        "repro.models.kernels",
        "repro.engine.chunking",
        "repro.engine.aggregator",
        "repro.core.ranking",
        "repro.core.estimators",
        "repro.metrics.ranking",
    )

    #: Import-layering contracts (R004): the worker process must stay
    #: lean — nothing it imports may pull in the HTTP layer, the CLI,
    #: or the curses dashboard.
    layering: tuple[LayeringContract, ...] = (
        LayeringContract(
            root="repro.engine.worker",
            forbidden=("repro.serve", "repro.cli", "repro.obs.top"),
        ),
    )

    #: Path (relative to the project root) of the observability docs
    #: page whose metric table must match the code (R007).
    metrics_docs: str = "docs/observability.md"


@dataclass
class ImportEdge:
    """One import statement: ``module`` depends on ``target``."""

    target: str
    line: int


@dataclass
class ModuleInfo:
    """A single parsed Python file."""

    name: str
    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    is_package: bool = False
    imports: list[ImportEdge] = field(default_factory=list)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


def _module_name_for(path: Path) -> str:
    """Derive the dotted module name by walking up through packages."""
    parts: list[str] = []
    if path.name == "__init__.py":
        current = path.parent
    else:
        parts.append(path.stem)
        current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    if not parts:
        # an __init__.py whose parent chain has no packages
        parts.append(path.parent.name)
    return ".".join(reversed(parts))


def _collect_imports(
    tree: ast.Module, module: str, is_package: bool
) -> list[ImportEdge]:
    """Extract import edges, resolving relative imports against *module*."""
    edges: list[ImportEdge] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                # `import a.b.c` binds `a` but loads a, a.b, and a.b.c.
                pieces = alias.name.split(".")
                for depth in range(1, len(pieces) + 1):
                    edges.append(
                        ImportEdge(".".join(pieces[:depth]), node.lineno)
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: for a module `a.b.c`, `from . import x`
                # refers to package `a.b`, `from .. import x` to `a`.  In
                # a package __init__ the level counts from the package
                # itself, one step shallower.
                base_parts = module.split(".")
                strip = node.level - 1 if is_package else node.level
                if len(base_parts) < strip:
                    continue
                base = ".".join(base_parts[: len(base_parts) - strip])
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if not base:
                continue
            edges.append(ImportEdge(base, node.lineno))
            for alias in node.names:
                if alias.name == "*":
                    continue
                # `from a.b import c` may bind submodule a.b.c; record
                # the candidate — the graph keeps only edges whose
                # target is a known project module, so spurious
                # attribute candidates are dropped at query time.
                edges.append(ImportEdge(f"{base}.{alias.name}", node.lineno))
    return edges


class ProjectIndex:
    """All analysed modules plus the import graph over them."""

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules: list[ModuleInfo] = list(modules)
        self._by_name: dict[str, ModuleInfo] = {
            module.name: module for module in self.modules
        }

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules)

    def get(self, name: str) -> ModuleInfo | None:
        return self._by_name.get(name)

    def module_names(self) -> frozenset[str]:
        return frozenset(self._by_name)

    def rel_paths(self) -> frozenset[str]:
        return frozenset(module.rel_path for module in self.modules)

    def project_imports(self, module: ModuleInfo) -> list[ImportEdge]:
        """Import edges from *module* into other analysed modules."""
        return [
            edge for edge in module.imports if edge.target in self._by_name
        ]


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            found.add(path)
    return sorted(found)


def build_index(paths: Iterable[Path], root: Path) -> ProjectIndex:
    """Parse every file under *paths* into a :class:`ProjectIndex`.

    Files that fail to parse are skipped here; the engine reports
    syntax errors separately so one broken file doesn't hide the rest
    of the analysis.
    """
    modules: list[ModuleInfo] = []
    for path in discover_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        name = _module_name_for(path)
        is_package = path.name == "__init__.py"
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        modules.append(
            ModuleInfo(
                name=name,
                path=path,
                rel_path=rel,
                source=source,
                tree=tree,
                is_package=is_package,
                imports=_collect_imports(tree, name, is_package),
            )
        )
    return ProjectIndex(root, modules)
