"""L-WD and L-WD-T — the paper's linear relation recommender (Algorithm 1).

L-WD is a parameter-free linearisation of the Wikidata property suggester's
association-rule mining: build the binary incidence matrix ``B`` of which
entities have been seen in which domain/range, form the co-occurrence
matrix ``W = B^T B``, normalise its rows into rule confidences, and
aggregate ``X = B W``.  An entity's score for a domain/range is then the
summed confidence of all rules firing from the slots it is already known
to occupy — two sparse matrix products, seconds on a CPU.

L-WD-T appends type membership columns to ``B`` so rules can also fire
from ``instanceOf``-style evidence; the output is sliced back to the
``2|R|`` relational columns.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.recommenders.base import RelationRecommender, binary_incidence


def confidence_matrix(b: sp.spmatrix) -> sp.csr_matrix:
    """Row-normalised co-occurrence ``W``: ARM confidence scores.

    ``W[i, j] = |support(i, j)| / |support(i)|`` — the confidence of the
    rule "members of slot i are also members of slot j".  The diagonal is
    1 by construction wherever slot i is non-empty.

    Examples
    --------
    Slot 0's single member is also in slot 1, but only half of slot 1's
    members are in slot 0:

    >>> import numpy as np
    >>> import scipy.sparse as sp
    >>> b = sp.csr_matrix(np.asarray([[1.0, 1.0], [0.0, 1.0]]))
    >>> confidence_matrix(b).toarray().tolist()
    [[1.0, 1.0], [0.5, 1.0]]
    """
    co = (b.T @ b).tocsr()
    support = np.asarray(co.diagonal()).reshape(-1)
    inv = np.zeros_like(support)
    nonzero = support > 0
    inv[nonzero] = 1.0 / support[nonzero]
    scaling = sp.diags(inv)
    return (scaling @ co).tocsr()


class LinearWD(RelationRecommender):
    """L-WD: ``X = B W`` with ``W`` the row-normalised ``B^T B``.

    Parameters
    ----------
    use_types:
        Fit the typed variant (L-WD-T).  Type membership columns are
        appended to ``B`` before forming ``W`` and sliced off the output.

    Examples
    --------
    ``a`` occupies the r1-head slot, whose one member also heads r2 — so
    the rule fires and ``a`` scores for r2's domain too:

    >>> from repro.kg.graph import build_graph
    >>> graph = build_graph({"train": [("a", "r1", "b"), ("a", "r2", "c")]})
    >>> fitted = LinearWD().fit(graph)
    >>> fitted.name
    'l-wd'
    >>> fitted.score_of(0, 1, "head") > 0.0
    True
    """

    def __init__(self, use_types: bool = False):
        self.use_types = use_types
        self.name = "l-wd-t" if use_types else "l-wd"
        self.requires_types = use_types

    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        b = binary_incidence(graph)
        num_columns = 2 * graph.num_relations
        if self.use_types:
            assert types is not None  # guaranteed by fit()
            membership = types.membership_matrix(graph.num_entities)
            b = sp.hstack([b, membership], format="csr")
        w = confidence_matrix(b)
        x = (b @ w).tocsr()
        if self.use_types:
            x = x[:, :num_columns].tocsr()
        return x
