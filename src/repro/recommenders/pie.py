"""PIE-style learned relation recommender (Chao et al., 2022).

The original PIE trains a lightweight GCN-based, self-supervised entity
typing model to predict which relations an entity can participate in.  We
reproduce the essential mechanism — a *learned, self-supervised* predictor
of relation-slot membership that generalises to unseen slots — with a
denoising autoencoder over the incidence matrix:

* input: an entity's binary domain/range incidence row with a random
  fraction of its known slots masked out;
* target: the full row;
* model: a two-layer MLP trained with positively-reweighted BCE using the
  library's own autodiff engine.

Because the model must *reconstruct* held-out slots from the surviving
ones, it learns the same slot co-occurrence structure L-WD reads off
directly — which is exactly the paper's empirical point: PIE's learned
scores buy little over the closed-form L-WD while costing orders of
magnitude more fit time (Table 5's "2 days vs 16 seconds" row).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autodiff.engine import Tensor, einsum, mul, relu, softplus, sub, mean
from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.models.base import xavier_uniform
from repro.models.optim import Adam
from repro.autodiff.engine import parameter
from repro.recommenders.base import RelationRecommender, binary_incidence


def _weighted_bce(logits: Tensor, labels: np.ndarray, pos_weight: float) -> Tensor:
    """``mean((1-y) softplus(z) + y * w * softplus(-z))`` with constant y."""
    y = Tensor(labels)
    neg_term = mul(Tensor(1.0 - labels), softplus(logits))
    pos_term = mul(y, softplus(sub(Tensor(np.zeros_like(labels)), logits))) * pos_weight
    return mean(neg_term + pos_term)


class PIE(RelationRecommender):
    """Learned slot-membership predictor (PIE stand-in).

    Parameters
    ----------
    hidden_dim:
        Width of the MLP's hidden layer.
    epochs, lr, batch_size:
        Training schedule of the autoencoder.
    mask_fraction:
        Fraction of an entity's known slots hidden from the input during
        training (the self-supervision signal).
    score_floor:
        Predicted probabilities below this are dropped when sparsifying
        the output matrix; seen slots are always kept at score >= 1.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> graph = build_graph({"train": [("a", "r", "b"), ("c", "r", "b")]})
    >>> fitted = PIE(epochs=2, hidden_dim=4, seed=0).fit(graph)
    >>> fitted.matrix.shape
    (3, 2)
    >>> fitted.score_of(0, 0, "head") >= 1.0  # seen slots never drop out
    True
    """

    name = "pie"

    def __init__(
        self,
        hidden_dim: int = 48,
        epochs: int = 60,
        lr: float = 0.01,
        batch_size: int = 1024,
        mask_fraction: float = 0.3,
        score_floor: float = 0.05,
        pos_weight: float = 8.0,
        seed: int = 0,
    ):
        if not 0.0 <= mask_fraction < 1.0:
            raise ValueError(f"mask_fraction must be in [0, 1), got {mask_fraction}")
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.mask_fraction = mask_fraction
        self.score_floor = score_floor
        self.pos_weight = pos_weight
        self.seed = seed

    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        del types  # PIE is type-free (Table 1)
        rng = np.random.default_rng(self.seed)
        b_dense = np.asarray(binary_incidence(graph).todense())
        num_slots = b_dense.shape[1]

        w1 = parameter(xavier_uniform(rng, (num_slots, self.hidden_dim)))
        b1 = parameter(np.zeros(self.hidden_dim))
        w2 = parameter(xavier_uniform(rng, (self.hidden_dim, num_slots)))
        b2 = parameter(np.zeros(num_slots))
        params = [w1, b1, w2, b2]
        optimizer = Adam(params, lr=self.lr)

        def forward(features: np.ndarray) -> Tensor:
            hidden = relu(einsum("bi,ih->bh", Tensor(features), w1) + b1)
            return einsum("bh,hk->bk", hidden, w2) + b2

        num_entities = b_dense.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(num_entities)
            for start in range(0, num_entities, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                labels = b_dense[batch_idx]
                # Denoising mask: hide a fraction of the known slots.
                keep = rng.random(labels.shape) >= self.mask_fraction
                features = labels * keep
                logits = forward(features)
                loss = _weighted_bce(logits, labels, self.pos_weight)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        # Inference: un-masked rows through the trained network.
        hidden = np.maximum(b_dense @ w1.data + b1.data, 0.0)
        logits = hidden @ w2.data + b2.data
        probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
        # Sparsify: drop noise-floor probabilities, force seen slots in.
        probabilities[probabilities < self.score_floor] = 0.0
        scores = np.maximum(probabilities, b_dense)
        return sp.csr_matrix(scores)
