"""PT — the Pseudo-Typed heuristic (PyKEEN's naming, paper Section 2).

An entity is a candidate head/tail of a relation iff it has been *seen* in
that position in the training split.  Scores are binary.  PT is the
simplest possible recommender and the upper bound of DBH's recall, but it
structurally cannot propose unseen candidates — its "CR Unseen" is exactly
zero, the failure mode Table 5 exhibits on 1-1 and M-1 relations.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.recommenders.base import RelationRecommender, binary_incidence


class PseudoTyped(RelationRecommender):
    """PT: the binary incidence matrix itself, ``X = B``.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> graph = build_graph({"train": [("a", "r", "b")]})
    >>> fitted = PseudoTyped().fit(graph)
    >>> fitted.column_support(0, "head").tolist()  # only 'a' was seen
    [0]
    >>> fitted.column_support(0, "tail").tolist()
    [1]
    """

    name = "pt"

    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        del types  # PT is type-free
        return binary_incidence(graph)
