"""The relation-recommender interface (paper Section 3).

A relation recommender assigns every entity a score for being the *head*
(domain) or *tail* (range) of every relation, independent of the other end
of the query.  Scores live in a sparse ``|E| x 2|R|`` matrix: column ``r``
is the domain of relation ``r`` and column ``r + |R|`` its range, matching
Algorithm 1's layout.

:class:`FittedRecommender` wraps that matrix with the lookups the
evaluation framework needs — column slices, probability vectors and
zero-score (easy-negative) masks — plus the fit runtime, which Table 5
reports as a headline comparison axis.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.kg.graph import HEAD, KnowledgeGraph, Side
from repro.kg.typing import TypeStore


def column_index(relation: int, side: Side, num_relations: int) -> int:
    """Map ``(relation, side)`` to its column in the score matrix.

    Domains (heads) occupy columns ``0 .. |R|-1`` and ranges (tails)
    columns ``|R| .. 2|R|-1``, exactly as Algorithm 1 offsets ranges by
    ``|R|``.

    Examples
    --------
    >>> column_index(2, "head", num_relations=5)
    2
    >>> column_index(2, "tail", num_relations=5)
    7
    """
    if not 0 <= relation < num_relations:
        raise IndexError(f"relation {relation} outside [0, {num_relations})")
    return relation if side == HEAD else relation + num_relations


def binary_incidence(graph: KnowledgeGraph) -> sp.csr_matrix:
    """Algorithm 1's matrix ``B``: binary ``|E| x 2|R|`` seen-as incidence.

    ``B[e, r] = 1`` iff entity ``e`` appears as a head of relation ``r`` in
    training; ``B[e, r + |R|] = 1`` iff it appears as a tail.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> graph = build_graph({"train": [("a", "likes", "b"), ("a", "likes", "c")]})
    >>> binary_incidence(graph).toarray()
    array([[1., 0.],
           [0., 1.],
           [0., 1.]])
    """
    train = graph.train.array
    num_r = graph.num_relations
    rows = np.concatenate([train[:, 0], train[:, 2]])
    cols = np.concatenate([train[:, 1], train[:, 1] + num_r])
    data = np.ones(rows.shape[0], dtype=np.float64)
    matrix = sp.csr_matrix(
        (data, (rows, cols)), shape=(graph.num_entities, 2 * num_r)
    )
    matrix.data[:] = 1.0  # collapse duplicate (entity, slot) observations
    return matrix


def count_incidence(graph: KnowledgeGraph) -> sp.csr_matrix:
    """Like :func:`binary_incidence` but keeping occurrence *counts* (DBH).

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> graph = build_graph({"train": [("a", "r", "b"), ("a", "r", "c")]})
    >>> count_incidence(graph).toarray()[0].tolist()  # 'a': head twice
    [2.0, 0.0]
    """
    train = graph.train.array
    num_r = graph.num_relations
    rows = np.concatenate([train[:, 0], train[:, 2]])
    cols = np.concatenate([train[:, 1], train[:, 1] + num_r])
    data = np.ones(rows.shape[0], dtype=np.float64)
    return sp.csr_matrix(
        (data, (rows, cols)), shape=(graph.num_entities, 2 * num_r)
    )


@dataclass
class FittedRecommender:
    """A fitted recommender: the score matrix plus metadata.

    Parameters
    ----------
    matrix:
        CSR ``|E| x 2|R|`` of non-negative scores; zero means "never a
        credible candidate" (the easy-negative signal of Section 4).
    name:
        Recommender name for tables.
    num_relations:
        Needed to resolve ``(relation, side)`` columns.
    fit_seconds:
        Wall-clock fitting time (the Table 5 "Runtime" column).

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> from repro.recommenders.pseudo_typed import PseudoTyped
    >>> graph = build_graph({"train": [("a", "r", "b"), ("c", "r", "b")]})
    >>> fitted = PseudoTyped().fit(graph)
    >>> fitted.column_support(0, "head").tolist()  # a and c were heads
    [0, 2]
    >>> fitted.zero_mask(0, "tail").tolist()       # everything but b
    [True, False, True]
    >>> fitted.column_probabilities(0, "head").tolist()
    [0.5, 0.0, 0.5]
    """

    matrix: sp.csr_matrix
    name: str
    num_relations: int
    fit_seconds: float = 0.0
    _csc: sp.csc_matrix | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.matrix.shape[1] != 2 * self.num_relations:
            raise ValueError(
                f"score matrix has {self.matrix.shape[1]} columns, "
                f"expected 2 * {self.num_relations}"
            )
        if self.matrix.nnz and self.matrix.data.min() < 0:
            raise ValueError("recommender scores must be non-negative")

    @property
    def num_entities(self) -> int:
        return self.matrix.shape[0]

    def _column_store(self) -> sp.csc_matrix:
        if self._csc is None:
            self._csc = self.matrix.tocsc()
        return self._csc

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def column(self, relation: int, side: Side) -> np.ndarray:
        """Dense score vector of one (relation, side) column."""
        col = column_index(relation, side, self.num_relations)
        return np.asarray(
            self._column_store()[:, col].todense()
        ).reshape(-1)

    def column_support(self, relation: int, side: Side) -> np.ndarray:
        """Entity ids with a *non-zero* score in the column (sorted)."""
        col = column_index(relation, side, self.num_relations)
        store = self._column_store()
        start, stop = store.indptr[col], store.indptr[col + 1]
        return np.sort(store.indices[start:stop]).astype(np.int64)

    def column_probabilities(self, relation: int, side: Side) -> np.ndarray:
        """Column scores normalised into a probability vector.

        An all-zero column falls back to uniform so sampling stays defined
        for relations the recommender knows nothing about.
        """
        scores = self.column(relation, side)
        total = scores.sum()
        if total <= 0:
            return np.full(scores.shape[0], 1.0 / scores.shape[0])
        return scores / total

    def score_of(self, entity: int, relation: int, side: Side) -> float:
        """Single-cell lookup."""
        col = column_index(relation, side, self.num_relations)
        return float(self.matrix[entity, col])

    def zero_mask(self, relation: int, side: Side) -> np.ndarray:
        """Boolean mask of entities with score exactly 0 (easy negatives)."""
        mask = np.ones(self.num_entities, dtype=bool)
        mask[self.column_support(relation, side)] = False
        return mask

    def total_nonzero(self) -> int:
        """Number of non-zero (entity, relation-side) slots."""
        return int(self.matrix.nnz)

    def __repr__(self) -> str:
        return (
            f"FittedRecommender({self.name!r}, |E|={self.num_entities}, "
            f"2|R|={self.matrix.shape[1]}, nnz={self.matrix.nnz}, "
            f"fit={self.fit_seconds:.2f}s)"
        )


class RelationRecommender(abc.ABC):
    """Base class: subclasses implement :meth:`_score_matrix`.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> from repro.recommenders.pseudo_typed import PseudoTyped
    >>> graph = build_graph({"train": [("a", "r", "b")]})
    >>> fitted = PseudoTyped().fit(graph)  # PT is the simplest subclass
    >>> fitted.name
    'pt'
    >>> fitted.score_of(0, 0, "head")
    1.0
    """

    name: str = "recommender"
    requires_types: bool = False

    def fit(
        self, graph: KnowledgeGraph, types: TypeStore | None = None
    ) -> FittedRecommender:
        """Fit on the training split and return the scored matrix.

        Typed recommenders raise ``ValueError`` when ``types`` is missing —
        the availability trade-off Table 1 catalogues.
        """
        if self.requires_types and types is None:
            raise ValueError(f"{self.name} requires entity types")
        start = time.perf_counter()
        matrix = self._score_matrix(graph, types)
        elapsed = time.perf_counter() - start
        return FittedRecommender(
            matrix=matrix.tocsr(),
            name=self.name,
            num_relations=graph.num_relations,
            fit_seconds=elapsed,
        )

    @abc.abstractmethod
    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        """Compute the raw non-negative ``|E| x 2|R|`` score matrix."""
