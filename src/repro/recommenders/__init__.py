"""Relation recommenders (paper Section 3): L-WD, PT, DBH, OntoSim, PIE."""

from repro.recommenders.base import (
    FittedRecommender,
    RelationRecommender,
    binary_incidence,
    column_index,
    count_incidence,
)
from repro.recommenders.dbh import DegreeBased, DegreeBasedTyped, type_slot_evidence
from repro.recommenders.lwd import LinearWD, confidence_matrix
from repro.recommenders.ontosim import OntoSim
from repro.recommenders.pie import PIE
from repro.recommenders.pseudo_typed import PseudoTyped
from repro.recommenders.registry import (
    RECOMMENDER_REGISTRY,
    available_recommenders,
    build_recommender,
)

__all__ = [
    "PIE",
    "RECOMMENDER_REGISTRY",
    "DegreeBased",
    "DegreeBasedTyped",
    "FittedRecommender",
    "LinearWD",
    "OntoSim",
    "PseudoTyped",
    "RelationRecommender",
    "available_recommenders",
    "binary_incidence",
    "build_recommender",
    "column_index",
    "confidence_matrix",
    "count_incidence",
    "type_slot_evidence",
]
