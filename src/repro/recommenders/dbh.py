"""DBH and DBH-T — degree-based heuristics (Chen et al., OGB-LSC solution).

DBH scores an entity for a relation's domain/range by the *number of
times* it was observed there: France seen 1,000 times as a tail of
``countryOfOrigin`` scores 1,000.  Its support equals PT's, so it inherits
PT's inability to surface unseen candidates.

DBH-T (paper Section 3.2) lifts the counts through entity types: if any
entity of type ``t`` was seen as the head of ``r``, *every* entity of type
``t`` receives a score for the domain of ``r`` equal to the number of its
types with that evidence.  This generalises to unseen entities at the cost
of requiring type data.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.recommenders.base import (
    RelationRecommender,
    binary_incidence,
    count_incidence,
)


def type_slot_evidence(
    graph: KnowledgeGraph, types: TypeStore
) -> sp.csr_matrix:
    """Binary ``|T| x 2|R|``: type ``t`` seen on a relation-side.

    ``S[t, c] = 1`` iff some training entity of type ``t`` occupies slot
    ``c``.  This is the shared statistic behind DBH-T and OntoSim.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> from repro.kg.typing import build_type_store
    >>> graph = build_graph({"train": [("alice", "worksAt", "acme")]})
    >>> types = build_type_store({0: ["Person"], 1: ["Company"]})
    >>> type_slot_evidence(graph, types).toarray()
    array([[1., 0.],
           [0., 1.]])
    """
    membership = types.membership_matrix(graph.num_entities)  # |E| x |T|
    b = binary_incidence(graph)  # |E| x 2|R|
    evidence = (membership.T @ b).tocsr()
    evidence.data[:] = 1.0
    return evidence


class DegreeBased(RelationRecommender):
    """DBH: raw per-slot occurrence counts.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> graph = build_graph({"train": [("a", "r", "b"), ("a", "r", "c")]})
    >>> fitted = DegreeBased().fit(graph)
    >>> fitted.score_of(0, 0, "head")  # 'a' seen twice as the head of r
    2.0
    """

    name = "dbh"

    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        del types
        return count_incidence(graph)


class DegreeBasedTyped(RelationRecommender):
    """DBH-T: counts of an entity's types with slot evidence.

    Examples
    --------
    Lyon was never seen as a ``capitalOf`` head, but shares Paris's type,
    so the typed lift scores it anyway — the unseen-candidate recall PT
    and DBH structurally lack:

    >>> from repro.kg.graph import build_graph
    >>> from repro.kg.typing import build_type_store
    >>> graph = build_graph({"train": [
    ...     ("paris", "capitalOf", "france"), ("lyon", "locatedIn", "france"),
    ... ]})
    >>> types = build_type_store({0: ["City"], 1: ["Country"], 2: ["City"]})
    >>> fitted = DegreeBasedTyped().fit(graph, types)
    >>> fitted.score_of(2, 0, "head")
    1.0
    """

    name = "dbh-t"
    requires_types = True

    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        assert types is not None
        membership = types.membership_matrix(graph.num_entities)
        evidence = type_slot_evidence(graph, types)
        return (membership @ evidence).tocsr()
