"""Name -> recommender factory, mirroring the paper's Table 1 line-up."""

from __future__ import annotations

from typing import Callable

from repro.recommenders.base import RelationRecommender
from repro.recommenders.dbh import DegreeBased, DegreeBasedTyped
from repro.recommenders.lwd import LinearWD
from repro.recommenders.ontosim import OntoSim
from repro.recommenders.pie import PIE
from repro.recommenders.pseudo_typed import PseudoTyped

RECOMMENDER_REGISTRY: dict[str, Callable[[], RelationRecommender]] = {
    "pt": PseudoTyped,
    "dbh": DegreeBased,
    "dbh-t": DegreeBasedTyped,
    "ontosim": OntoSim,
    "pie": PIE,
    "l-wd": lambda: LinearWD(use_types=False),
    "l-wd-t": lambda: LinearWD(use_types=True),
}


def available_recommenders() -> list[str]:
    """Names of all registered recommenders.

    Examples
    --------
    >>> available_recommenders()
    ['dbh', 'dbh-t', 'l-wd', 'l-wd-t', 'ontosim', 'pie', 'pt']
    """
    return sorted(RECOMMENDER_REGISTRY)


def build_recommender(name: str, **kwargs) -> RelationRecommender:
    """Instantiate a recommender by name (case-insensitive).

    ``kwargs`` are forwarded to the constructor (useful for PIE's training
    schedule); the zero-argument factories reject unexpected kwargs.

    Examples
    --------
    >>> build_recommender("pt").name
    'pt'
    >>> build_recommender("L-WD").name  # case-insensitive
    'l-wd'
    >>> build_recommender("nope")
    Traceback (most recent call last):
        ...
    KeyError: "unknown recommender 'nope'; available: dbh, dbh-t, l-wd, l-wd-t, ontosim, pie, pt"
    """
    key = name.lower()
    if key not in RECOMMENDER_REGISTRY:
        raise KeyError(
            f"unknown recommender {name!r}; available: "
            f"{', '.join(available_recommenders())}"
        )
    factory = RECOMMENDER_REGISTRY[key]
    if kwargs:
        if key == "pie":
            return PIE(**kwargs)
        if key in ("l-wd", "l-wd-t"):
            raise TypeError(f"{name} takes no configuration arguments")
        return factory(**kwargs)  # type: ignore[call-arg]
    return factory()
