"""OntoSim — the type-closure heuristic (paper Section 3.2).

Every entity of type ``t`` belongs to the domain/range of ``r`` as soon as
*any* entity of type ``t`` was seen there.  This is DBH-T's support made
binary: candidate recall is near-perfect (anything type-compatible is in),
but the reduction rate collapses for broad types — the CR/RR corner Table 5
places OntoSim in.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.recommenders.base import RelationRecommender
from repro.recommenders.dbh import type_slot_evidence


class OntoSim(RelationRecommender):
    """OntoSim: binary type-closure candidate sets.

    Examples
    --------
    >>> from repro.kg.graph import build_graph
    >>> from repro.kg.typing import build_type_store
    >>> graph = build_graph({"train": [("paris", "capitalOf", "france")]})
    >>> types = build_type_store({0: ["City"], 1: ["Country"]})
    >>> OntoSim().fit(graph, types).score_of(0, 0, "head")
    1.0
    >>> OntoSim().fit(graph)  # typed recommenders insist on type data
    Traceback (most recent call last):
        ...
    ValueError: ontosim requires entity types
    """

    name = "ontosim"
    requires_types = True

    def _score_matrix(
        self, graph: KnowledgeGraph, types: TypeStore | None
    ) -> sp.spmatrix:
        assert types is not None
        membership = types.membership_matrix(graph.num_entities)
        evidence = type_slot_evidence(graph, types)
        closure = (membership @ evidence).tocsr()
        closure.data[:] = 1.0
        return closure
