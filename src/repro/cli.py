"""Command-line interface: the framework without writing Python.

``repro <command>`` exposes the workflows a downstream user reaches for
first:

* ``datasets``        — list the zoo with Table 4 statistics;
* ``generate``        — export a zoo dataset (triples + types) as TSV;
* ``recommenders``    — CR/RR/runtime comparison on one dataset (Table 5);
* ``easy-negatives``  — zero-score mining + false-negative audit (Tables 2/10);
* ``complexity``      — sampling-cost accounting (Table 3);
* ``evaluate``        — train a model, then compare the full ranking
  against the random and guided estimates (the quickstart as one command).

Every command prints the same fixed-width tables the benchmark suite
writes, so CLI output and ``benchmarks/results/`` are directly comparable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import (
    table2_easy_negatives,
    table4_dataset_statistics,
    table5_recommenders,
    table10_false_negative_audit,
)
from repro.bench.tables import render_table
from repro.core.complexity import sampling_complexity
from repro.core.protocol import EvaluationProtocol
from repro.datasets.zoo import available_datasets, load
from repro.kg.io import save_graph_dir, write_types
from repro.models import Trainer, TrainingConfig, available_models, build_model
from repro.recommenders.registry import available_recommenders


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="codex-s-lite",
        choices=available_datasets(),
        help="zoo dataset name",
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = table4_dataset_statistics()
    print(render_table(rows, title="Zoo datasets (Table 4 statistics)"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load(args.dataset)
    out = Path(args.out)
    save_graph_dir(dataset.graph, out)
    write_types(out / "types.tsv", dataset.types, dataset.graph.entities)
    print(
        f"Wrote {dataset.graph.name}: train/valid/test.tsv + types.tsv under {out}"
    )
    return 0


def _cmd_recommenders(args: argparse.Namespace) -> int:
    names = tuple(args.recommenders) if args.recommenders else None
    rows = table5_recommenders((args.dataset,), names)
    print(render_table(rows, title=f"Recommenders on {args.dataset} (Table 5)"))
    return 0


def _cmd_easy_negatives(args: argparse.Namespace) -> int:
    rows, reports = table2_easy_negatives((args.dataset,))
    print(render_table(rows, title=f"Easy negatives on {args.dataset} (Table 2)"))
    audit = table10_false_negative_audit(reports)
    print()
    print(render_table(audit, title="False easy negatives (Table 10 audit)"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.kg.analysis import (
        connectivity_summary,
        relation_profiles,
        unseen_candidate_exposure,
    )

    dataset = load(args.dataset)
    graph = dataset.graph
    profiles = relation_profiles(graph)
    print(
        render_table(
            [p.as_row() for p in profiles],
            title=f"Relation cardinality profiles of {graph.name}",
        )
    )
    counts: dict[str, int] = {}
    for profile in profiles:
        counts[profile.cardinality.value] = counts.get(profile.cardinality.value, 0) + 1
    print(
        "\nCardinality classes: "
        + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    )
    exposure = unseen_candidate_exposure(graph)
    print(
        f"Unseen test answers (the mass PT cannot recall): "
        f"heads {exposure['head']:.1%}, tails {exposure['tail']:.1%}"
    )
    print()
    print(
        render_table(
            [connectivity_summary(graph).as_row()],
            title="Connectivity of the training graph",
        )
    )
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    row = sampling_complexity(load(args.dataset).graph, args.fraction).as_row()
    print(
        render_table(
            [row], title=f"Sampling complexity at {args.fraction:.1%} (Table 3)"
        )
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load(args.dataset)
    graph = dataset.graph
    model = build_model(
        args.model, graph.num_entities, graph.num_relations, dim=args.dim, seed=args.seed
    )
    config = TrainingConfig(epochs=args.epochs, lr=args.lr, loss=args.loss, seed=args.seed)
    print(f"Training {args.model} on {graph.name} for {args.epochs} epochs ...")
    history = Trainer(config).fit(model, graph)
    if history.losses:
        print(f"loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    if args.save:
        from repro.models import save_model

        save_model(model, args.save)
        print(f"Saved checkpoint to {args.save}")

    guided = EvaluationProtocol(
        graph,
        recommender=args.recommender,
        strategy=args.strategy,
        sample_fraction=args.fraction,
        types=dataset.types,
        seed=args.seed,
    )
    guided.prepare()
    random_protocol = EvaluationProtocol(
        graph, strategy="random", sample_fraction=args.fraction, seed=args.seed
    )
    truth = guided.evaluate_full(model)
    random_estimate = random_protocol.evaluate(model)
    guided_estimate = guided.evaluate(model)
    rows = [
        {
            "Protocol": "full filtered ranking",
            "MRR": truth.metrics.mrr,
            "Hits@10": truth.metrics.hits_at(10),
            "Seconds": truth.seconds,
            "Scores": truth.num_scored,
        },
        {
            "Protocol": f"random @ {args.fraction:.0%}",
            "MRR": random_estimate.metrics.mrr,
            "Hits@10": random_estimate.metrics.hits_at(10),
            "Seconds": random_estimate.seconds,
            "Scores": random_estimate.num_scored,
        },
        {
            "Protocol": f"{args.strategy} ({args.recommender}) @ {args.fraction:.0%}",
            "MRR": guided_estimate.metrics.mrr,
            "Hits@10": guided_estimate.metrics.hits_at(10),
            "Seconds": guided_estimate.seconds,
            "Scores": guided_estimate.num_scored,
        },
    ]
    print()
    print(render_table(rows, title="Evaluation comparison"))
    random_error = abs(random_estimate.metrics.mrr - truth.metrics.mrr)
    guided_error = abs(guided_estimate.metrics.mrr - truth.metrics.mrr)
    print(
        f"\nMRR error: random={random_error:.3f}, guided={guided_error:.3f}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast, accurate evaluation of knowledge graph link predictors.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list zoo datasets with statistics")

    generate = commands.add_parser("generate", help="export a dataset as TSV")
    _add_dataset_argument(generate)
    generate.add_argument("--out", required=True, help="output directory")

    recommenders = commands.add_parser(
        "recommenders", help="compare relation recommenders (Table 5)"
    )
    _add_dataset_argument(recommenders)
    recommenders.add_argument(
        "--recommenders",
        nargs="+",
        choices=available_recommenders(),
        help="subset to compare (default: all)",
    )

    easy = commands.add_parser(
        "easy-negatives", help="mine easy negatives + audit (Tables 2/10)"
    )
    _add_dataset_argument(easy)

    complexity = commands.add_parser(
        "complexity", help="sampling-cost accounting (Table 3)"
    )
    _add_dataset_argument(complexity)
    complexity.add_argument("--fraction", type=float, default=0.025)

    analyze = commands.add_parser(
        "analyze", help="relation cardinalities + connectivity of a dataset"
    )
    _add_dataset_argument(analyze)

    evaluate = commands.add_parser(
        "evaluate", help="train a model and compare evaluation protocols"
    )
    _add_dataset_argument(evaluate)
    evaluate.add_argument("--model", default="complex", choices=available_models())
    evaluate.add_argument("--epochs", type=int, default=8)
    evaluate.add_argument("--dim", type=int, default=32)
    evaluate.add_argument("--lr", type=float, default=0.05)
    evaluate.add_argument("--loss", default="softplus")
    evaluate.add_argument(
        "--recommender", default="l-wd", choices=available_recommenders()
    )
    evaluate.add_argument(
        "--strategy", default="static", choices=("random", "probabilistic", "static")
    )
    evaluate.add_argument("--fraction", type=float, default=0.1)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--save", help="write the trained model to this .npz path")
    return parser


_HANDLERS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "recommenders": _cmd_recommenders,
    "easy-negatives": _cmd_easy_negatives,
    "complexity": _cmd_complexity,
    "analyze": _cmd_analyze,
    "evaluate": _cmd_evaluate,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
