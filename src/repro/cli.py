"""Command-line interface: the framework without writing Python.

``repro <command>`` exposes the workflows a downstream user reaches for
first:

* ``run``             — execute a declarative experiment spec (JSON):
  one file naming dataset, model, training recipe and evaluation
  protocol, with ``--set key=value`` dotted overrides, ``--dry-run``
  printing the fully resolved spec, and an optional ``"sweep"`` section
  expanding grid/zip variants;
* ``datasets``        — list the zoo with Table 4 statistics;
* ``generate``        — export a zoo dataset (triples + types) as TSV;
* ``recommenders``    — CR/RR/runtime comparison on one dataset (Table 5);
* ``easy-negatives``  — zero-score mining + false-negative audit (Tables 2/10);
* ``complexity``      — sampling-cost accounting (Table 3);
* ``train``           — train a model and write its checkpoint;
* ``evaluate``        — train a model, then compare the full ranking
  against the random and guided estimates (the quickstart as one command);
* ``serve``           — online link-prediction HTTP API over saved
  checkpoints, with micro-batching and candidate-filtered top-k;
* ``runs``            — list/show the experiment store's run journal
  (spec-driven runs print their originating spec JSON);
* ``cache``           — list or garbage-collect the artifact cache;
* ``trace``           — render the span trace a ``--trace`` run journaled
  (``show``), or export its timeline as Chrome ``trace_event`` JSON
  (``export --format chrome``, loadable in ``chrome://tracing``);
* ``top``             — live terminal dashboard over a serve instance's
  ``/metrics`` (qps, latency quantiles, batch occupancy, cache hit rate,
  pool worker utilisation, shm bytes), ``--once`` for scripting;
* ``bench``           — trend view over committed ``BENCH_*.json`` records
  and the perf-regression gate CI runs against them;
* ``ingest``          — stream TSV / N-Triples split files into a compact
  int32 triple store without materialising the raw files;
* ``lint``            — project-specific static analysis (seeded-RNG
  discipline, shm unlink pairing, lock discipline, worker import
  layering, hot-path determinism, metric/doc parity — docs/analysis.md),
  with ``--select``/``--ignore``, ``# repro: noqa[RULE]`` suppressions
  and a committed baseline that CI requires to stay empty;
* ``shard``           — convert a saved checkpoint into ``.npy`` mmap
  shards for out-of-core evaluation (``--backend mmap``, docs/scale.md).

``train``, ``evaluate`` and ``serve`` are thin shims: each builds an
:class:`repro.experiment.ExperimentSpec` from its flags and hands it to
the same orchestrator behind ``repro run``, so a flag invocation and the
equivalent spec produce identical results and identical store keys.

Every command prints the same fixed-width tables the benchmark suite
writes, so CLI output and ``benchmarks/results/`` are directly comparable.

Store-aware commands resolve their root as ``--store`` > ``$REPRO_STORE``
> ``.repro_store``; with a store, repeated runs are served from the
artifact cache and journalled.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import (
    evaluation_comparison_rows,
    table2_easy_negatives,
    table4_dataset_statistics,
    table5_recommenders,
    table10_false_negative_audit,
)
from repro.bench.tables import render_table
from repro.core.complexity import sampling_complexity
from repro.engine.chunking import DEFAULT_CHUNK_SIZE
from repro.datasets.zoo import available_datasets, load
from repro.experiment import (
    DatasetSpec,
    EvaluationSpec,
    ExperimentResult,
    ExperimentSpec,
    ModelSpec,
    ServeSpec,
    SpecError,
    TrainingSpec,
    apply_overrides,
    build_registry,
    load_spec_file,
    parse_set_expression,
    split_sweep,
    sweep,
)
from repro.experiment import run as run_experiment
from repro.kg.io import save_graph_dir, write_types
from repro.models import available_models
from repro.obs import get_tracer, set_tracing
from repro.obs.trace import render_trace
from repro.recommenders.registry import available_recommenders
from repro.store import (
    ExperimentStore,
    render_cache,
    render_run_detail,
    render_runs,
)
from repro.store.report import FORMATS


# ----------------------------------------------------------------------
# Shared argument wiring
# ----------------------------------------------------------------------
def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="codex-s-lite",
        choices=available_datasets(),
        help="zoo dataset name",
    )


def _add_format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        default="table",
        choices=FORMATS,
        help="output format",
    )


def _store_parent() -> argparse.ArgumentParser:
    """Shared ``--store`` flag (optional value: env/default root)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        help="experiment store root; without a value: $REPRO_STORE or "
        ".repro_store",
    )
    return parent


def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0, help="model/pool seed")
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    """Shared parallel-engine knobs."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scoring processes for the ranking passes "
        "(1 = serial, -1 = all cores; results are identical at any count)",
    )
    parent.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="queries ranked per score-matrix chunk",
    )
    return parent


def _trace_parent() -> argparse.ArgumentParser:
    """Shared ``--trace`` opt-in for run/train/evaluate."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        action="store_true",
        help="record a span trace (printed after the run; journaled with "
        "--store, then `repro trace show RUN` renders it back)",
    )
    return parent


def _start_tracing(args: argparse.Namespace) -> bool:
    """Enable the global tracer when the command asked for ``--trace``."""
    if getattr(args, "trace", False):
        set_tracing(True)
        return True
    return False


def _print_trace() -> None:
    summary = get_tracer().summary()
    if summary is not None:
        print()
        print(render_trace(summary, title="Span trace"))


def _dtype_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="embedding parameter dtype (float32 halves memory)",
    )
    return parent


def _add_training_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs shared by ``train`` and ``evaluate``."""
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--loss", default="softplus")
    parser.add_argument(
        "--no-fused",
        action="store_true",
        help="train through the autodiff engine even when the model has "
        "an analytic kernel (debugging / A-B timing)",
    )


def _required_store(args: argparse.Namespace) -> ExperimentStore:
    """The store for commands that always need one (serve/runs/cache)."""
    return ExperimentStore.from_env(args.store or None)


def _optional_store(args: argparse.Namespace) -> ExperimentStore | None:
    """The store for commands where ``--store`` opts in (run/train/evaluate)."""
    if args.store is None:
        return None
    return ExperimentStore.from_env(args.store or None)


# ----------------------------------------------------------------------
# Table / analysis commands
# ----------------------------------------------------------------------
def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = table4_dataset_statistics()
    print(render_table(rows, title="Zoo datasets (Table 4 statistics)"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load(args.dataset)
    out = Path(args.out)
    save_graph_dir(dataset.graph, out)
    write_types(out / "types.tsv", dataset.types, dataset.graph.entities)
    print(
        f"Wrote {dataset.graph.name}: train/valid/test.tsv + types.tsv under {out}"
    )
    return 0


def _cmd_recommenders(args: argparse.Namespace) -> int:
    names = tuple(args.recommenders) if args.recommenders else None
    rows = table5_recommenders((args.dataset,), names)
    print(render_table(rows, title=f"Recommenders on {args.dataset} (Table 5)"))
    return 0


def _cmd_easy_negatives(args: argparse.Namespace) -> int:
    rows, reports = table2_easy_negatives((args.dataset,))
    print(render_table(rows, title=f"Easy negatives on {args.dataset} (Table 2)"))
    audit = table10_false_negative_audit(reports)
    print()
    print(render_table(audit, title="False easy negatives (Table 10 audit)"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.kg.analysis import (
        connectivity_summary,
        relation_profiles,
        unseen_candidate_exposure,
    )

    dataset = load(args.dataset)
    graph = dataset.graph
    profiles = relation_profiles(graph)
    print(
        render_table(
            [p.as_row() for p in profiles],
            title=f"Relation cardinality profiles of {graph.name}",
        )
    )
    counts: dict[str, int] = {}
    for profile in profiles:
        counts[profile.cardinality.value] = counts.get(profile.cardinality.value, 0) + 1
    print(
        "\nCardinality classes: "
        + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    )
    exposure = unseen_candidate_exposure(graph)
    print(
        f"Unseen test answers (the mass PT cannot recall): "
        f"heads {exposure['head']:.1%}, tails {exposure['tail']:.1%}"
    )
    print()
    print(
        render_table(
            [connectivity_summary(graph).as_row()],
            title="Connectivity of the training graph",
        )
    )
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    row = sampling_complexity(load(args.dataset).graph, args.fraction).as_row()
    print(
        render_table(
            [row], title=f"Sampling complexity at {args.fraction:.1%} (Table 3)"
        )
    )
    return 0


# ----------------------------------------------------------------------
# Spec-building shims: train / evaluate / serve
# ----------------------------------------------------------------------
def _spec_from_training_args(
    args: argparse.Namespace, task: str, checkpoint: str | None
) -> ExperimentSpec:
    """The spec equivalent of ``train``/``evaluate`` flags (the shim core)."""
    model = ModelSpec(
        name=args.model,
        dim=args.dim,
        seed=args.seed,
        dtype=args.dtype,
        backend=getattr(args, "backend", ModelSpec.backend),
    )
    training = TrainingSpec(
        epochs=args.epochs,
        batch_size=getattr(args, "batch_size", TrainingSpec.batch_size),
        lr=args.lr,
        loss=args.loss,
        optimizer=getattr(args, "optimizer", TrainingSpec.optimizer),
        use_fused=not args.no_fused,
        seed=args.seed,
    )
    evaluation = EvaluationSpec(
        recommender=getattr(args, "recommender", EvaluationSpec.recommender),
        strategy=getattr(args, "strategy", EvaluationSpec.strategy),
        sample_fraction=getattr(args, "fraction", EvaluationSpec.sample_fraction),
        seed=args.seed,
        workers=getattr(args, "workers", 1),
        chunk_size=getattr(args, "chunk_size", DEFAULT_CHUNK_SIZE),
    )
    return ExperimentSpec(
        task=task,
        dataset=DatasetSpec(name=args.dataset),
        model=model,
        training=training,
        evaluation=evaluation,
        checkpoint=checkpoint,
    )


def _print_train_summary(result: ExperimentResult, epochs: int) -> None:
    seconds = result.train_seconds
    triples = result.triples_per_epoch * epochs
    if triples:
        print(f"{seconds:.2f} s ({triples / max(seconds, 1e-9):,.0f} triples/s)")
    else:
        print(f"{seconds:.2f} s (0 epochs: nothing trained)")


def _print_evaluation_summary(
    result: ExperimentResult, store: ExperimentStore | None
) -> None:
    print()
    print(render_table(evaluation_comparison_rows(result), title="Evaluation comparison"))
    assert result.truth is not None and result.guided_estimate is not None
    guided_error = abs(result.guided_estimate.metrics.mrr - result.truth.metrics.mrr)
    if result.random_estimate is not None:
        random_error = abs(result.random_estimate.metrics.mrr - result.truth.metrics.mrr)
        print(f"\nMRR error: random={random_error:.3f}, guided={guided_error:.3f}")
    else:
        print(f"\nMRR error: guided={guided_error:.3f}")
    if store is not None and result.run_id is not None:
        print(f"Journaled run {result.run_id} in {store.root}")


def _cmd_train(args: argparse.Namespace) -> int:
    spec = _spec_from_training_args(args, task="train", checkpoint=args.out)
    traced = _start_tracing(args)
    result = run_experiment(
        spec, store=_optional_store(args), kind="cli:train", progress=print
    )
    _print_train_summary(result, spec.training.epochs)
    if traced:
        _print_trace()
    print(f"Serve the checkpoint with `repro serve --model-path {args.out}`")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    spec = _spec_from_training_args(
        args, task="evaluate", checkpoint=args.save_model or None
    )
    store = _optional_store(args)
    traced = _start_tracing(args)
    result = run_experiment(spec, store=store, kind="cli:evaluate", progress=print)
    _print_evaluation_summary(result, store)
    if traced:
        _print_trace()
    return 0


def _serve_from_spec(
    spec: ExperimentSpec, store: ExperimentStore, dry_run: bool
) -> int:
    """Stand up (or dry-run) the serving stack behind a ``serve`` spec."""
    from repro.serve import LinkPredictionService, run_server

    registry, discovered = build_registry(spec, store, progress=print)
    if discovered:
        print(
            f"Discovered checkpoints in {registry.checkpoint_dir}: "
            f"{', '.join(discovered)}"
        )
    rows = [
        {
            "Name": row["name"],
            "Model": row["model"],
            "Dim": row["dim"],
            "Params": row["parameters"],
            "Recommender": row["recommender"],
            "Checkpoint": row["checkpoint"] or "(in-memory)",
        }
        for row in registry.rows()
    ]
    print(
        render_table(
            rows, title=f"Serving {registry.graph.name} ({len(registry)} models)"
        )
    )
    if dry_run:
        print("Dry run: not binding the port.")
        return 0
    serve = spec.serve
    service = LinkPredictionService(
        registry,
        max_batch_size=serve.max_batch,
        max_wait=serve.max_wait_ms / 1000.0,
        cache_size=serve.cache_size,
        engine_workers=serve.engine_workers,
    )
    print(
        f"Serving on http://{serve.host}:{serve.port} "
        f"(max batch {serve.max_batch}, max wait {serve.max_wait_ms} ms) — Ctrl-C stops."
    )
    run_server(service, host=serve.host, port=serve.port)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        task="serve",
        dataset=DatasetSpec(name=args.dataset),
        model=ModelSpec(name=args.model, dim=args.dim, seed=args.seed),
        # loss="margin": the ad-hoc fallback has always trained with the
        # TrainingConfig default, not the spec/CLI default of softplus —
        # keep the served model identical across the spec migration.
        training=TrainingSpec(epochs=args.epochs, seed=args.seed, loss="margin"),
        serve=ServeSpec(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            cache_size=args.cache_size,
            engine_workers=args.engine_workers,
            recommender=args.recommender,
            model_paths=tuple(args.model_path or ()),
        ),
    )
    return _serve_from_spec(spec, _required_store(args), dry_run=args.dry_run)


# ----------------------------------------------------------------------
# repro run — the declarative front door
# ----------------------------------------------------------------------
def _sweep_variants(spec: ExperimentSpec, sweep_section: dict | None):
    if not sweep_section:
        return None
    unknown = sorted(set(sweep_section) - {"grid", "zip"})
    if unknown:
        raise SpecError(
            f"sweep: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: grid, zip"
        )
    return sweep(
        spec, grid=sweep_section.get("grid"), zip_=sweep_section.get("zip")
    )


def _run_sweep(variants, store: ExperimentStore | None) -> int:
    rows = []
    for index, variant in enumerate(variants):
        print(f"[{index + 1}/{len(variants)}] {variant.label}  ({variant.key[:12]})")
        result = run_experiment(
            variant.spec, store=store, kind="cli:run", progress=print
        )
        row: dict = {
            "Variant": variant.label,
            "Key": variant.key[:12],
        }
        if result.truth is not None:
            row["MRR"] = result.truth.metrics.mrr
            row["Hits@10"] = result.truth.metrics.hits_at(10)
        if result.guided_estimate is not None:
            row["Est MRR"] = result.guided_estimate.metrics.mrr
        if result.truth is None and result.losses:
            row["Loss"] = round(result.losses[-1], 4)
        row["Seconds"] = round(result.seconds, 2)
        row["Cache"] = "hit" if result.cache_hit else "miss"
        rows.append(row)
        print()
    print(render_table(rows, title=f"Sweep summary ({len(rows)} variants)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        payload = load_spec_file(args.spec)
        overrides = dict(parse_set_expression(item) for item in args.overrides)
        if overrides:
            # Before the sweep split, so `--set sweep.grid=...` works too.
            payload = apply_overrides(payload, overrides)
        payload, sweep_section = split_sweep(payload)
        spec = ExperimentSpec.from_dict(payload)
        variants = _sweep_variants(spec, sweep_section)
        if variants and spec.task == "serve":
            raise SpecError("sweep: serve specs cannot be swept")
    except SpecError as error:
        print(f"spec error: {error}", file=sys.stderr)
        return 2
    if args.dry_run:
        print(spec.to_json())
        if variants:
            rows = [{"Variant": v.label, "Key": v.key} for v in variants]
            print()
            print(render_table(rows, title=f"Sweep: {len(variants)} variants"))
        else:
            print(f"\nSpec key: {spec.key()}")
        print("Dry run: nothing executed.")
        return 0
    if spec.task == "serve":
        return _serve_from_spec(spec, _required_store(args), dry_run=False)
    store = _optional_store(args)
    traced = _start_tracing(args)
    if variants:
        return _run_sweep(variants, store)
    result = run_experiment(spec, store=store, kind="cli:run", progress=print)
    if spec.task == "evaluate":
        _print_evaluation_summary(result, store)
    else:
        _print_train_summary(result, spec.training.epochs)
        if store is not None and result.run_id is not None:
            print(f"Journaled run {result.run_id} in {store.root}")
    if traced:
        _print_trace()
    return 0


# ----------------------------------------------------------------------
# Out-of-core commands: ingest / shard
# ----------------------------------------------------------------------
def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.datasets.ingest import IngestError, ingest_directory

    try:
        result = ingest_directory(
            args.input_dir, args.out, fmt=args.format, name=args.name
        )
    except IngestError as error:
        print(f"ingest error: {error}", file=sys.stderr)
        return 2
    rows = []
    for split, count in result.splits.items():
        stats = result.stats.get(split, {})
        rows.append(
            {
                "Split": split,
                "Triples": count,
                "Duplicates": stats.get("duplicates", 0),
                "Unseen entities": (
                    "-"
                    if split == "train"
                    else stats.get("unseen_in_train_entities", 0)
                ),
            }
        )
    print(
        render_table(
            rows,
            title=f"Ingested {result.name}: {result.num_entities:,} entities, "
            f"{result.num_relations:,} relations",
        )
    )
    print(f"Compact store written to {result.directory}")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.models import load_model
    from repro.models.io import save_sharded

    model = load_model(args.checkpoint)
    max_bytes = (
        None if args.max_shard_mb is None else int(args.max_shard_mb * 1024 * 1024)
    )
    source = save_sharded(model, args.out, max_shard_bytes=max_bytes)
    print(
        f"Sharded {model.name} ({model.num_entities:,} entities, dim {model.dim}) "
        f"to {source.directory}: {source.nbytes:,} bytes, digest {source.digest[:16]}"
    )
    print("Evaluate against it out of core with `repro evaluate --backend mmap`.")
    return 0


# ----------------------------------------------------------------------
# Store commands
# ----------------------------------------------------------------------
def _cmd_runs(args: argparse.Namespace) -> int:
    store = _required_store(args)
    if args.runs_command == "list":
        print(render_runs(store.journal, fmt=args.format, limit=args.limit))
        return 0
    record = store.journal.get(args.run_id)
    if record is None:
        print(f"no run matching {args.run_id!r} in {store.journal.path}")
        return 1
    print(render_run_detail(record))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    store = _required_store(args)
    record = store.journal.get(args.run_id)
    if record is None:
        print(f"no run matching {args.run_id!r} in {store.journal.path}")
        return 1
    if record.obs is None:
        print(
            f"run {record.run_id} carries no trace — re-run it with --trace "
            f"to record one"
        )
        return 1
    if args.trace_command == "export":
        import json as json_module

        from repro.obs.trace import chrome_trace

        events = record.obs.get("events", [])
        if not events:
            print(
                f"run {record.run_id} has no timeline events — traces recorded "
                f"before timeline support carry only the aggregate span tree"
            )
            return 1
        payload = chrome_trace(
            events, metadata={"run_id": record.run_id, "kind": record.kind}
        )
        text = json_module.dumps(payload, indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n", encoding="utf-8")
            print(
                f"wrote {len(events)} events to {args.out} "
                f"(open in chrome://tracing or Perfetto)"
            )
        else:
            print(text)
        return 0
    print(
        render_trace(
            record.obs, title=f"Span trace of run {record.run_id} ({record.kind})"
        )
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    return run_top(source=args.url, interval=args.interval, once=args.once)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import gate_records, load_bench_records, trend_rows
    from repro.store.report import render_rows

    if args.bench_command == "trend":
        records = load_bench_records(args.results)
        if not records:
            print(f"no BENCH_*.json records under {args.results}", file=sys.stderr)
            return 1
        title = f"Bench trend ({len(records)} records) — {args.results}"
        print(
            render_rows(
                trend_rows(records),
                fmt=args.format,
                title=title if args.format == "table" else None,
            )
        )
        return 0
    try:
        rows, regressions = gate_records(
            args.baseline,
            args.candidate,
            max_regression=args.max_regression,
            absolute=args.absolute,
        )
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    title = f"Bench gate: {args.candidate} vs baseline {args.baseline}"
    print(
        render_rows(
            rows, fmt=args.format, title=title if args.format == "table" else None
        )
    )
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed more than "
            f"{args.max_regression:.0%}: {', '.join(regressions)}"
        )
        return 1
    print(f"\nOK: no metric regressed more than {args.max_regression:.0%}.")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _required_store(args)
    if args.cache_command == "ls":
        print(render_cache(store.artifacts, fmt=args.format))
        return 0
    report = store.gc()
    print(
        f"Removed {report.num_removed} orphaned files "
        f"({report.freed_bytes / 1024:.1f} KB) from {store.artifacts.root}"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        UnknownRuleError,
        load_baseline,
        run_analysis,
        split_by_baseline,
        write_baseline,
    )
    from repro.analysis.baseline import BaselineError
    from repro.analysis.report import render_json, render_rule_catalog, render_table

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    root = Path(args.root).resolve()
    paths = [Path(p) for p in args.paths or ["src"]]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        report = run_analysis(paths, root, select=select, ignore=ignore)
    except UnknownRuleError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, report.violations)
        print(
            f"wrote {len(report.violations)} violation(s) to {baseline_path}"
        )
        return 0
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    if args.strict and baseline:
        print(
            f"lint: --strict requires an empty baseline, but "
            f"{baseline_path} grandfathers {len(baseline)} violation(s)",
            file=sys.stderr,
        )
        return 1
    new, baselined = split_by_baseline(report.violations, baseline)
    if args.format == "json":
        report.violations = new
        print(render_json(report, baselined=len(baselined)))
    else:
        print(
            render_table(
                new,
                files_checked=report.files_checked,
                suppressed=report.suppressed,
                baselined=len(baselined),
            )
        )
    return 1 if new else 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast, accurate evaluation of knowledge graph link predictors.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    store_parent = _store_parent()
    seed_parent = _seed_parent()
    engine_parent = _engine_parent()
    dtype_parent = _dtype_parent()
    trace_parent = _trace_parent()

    run_parser = commands.add_parser(
        "run",
        parents=[store_parent, trace_parent],
        help="execute a declarative experiment spec (JSON)",
    )
    run_parser.add_argument("spec", metavar="SPEC.json", help="experiment spec file")
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted override (repeatable), e.g. --set training.lr=0.1",
    )
    run_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the fully resolved spec (and sweep variants) without running",
    )

    commands.add_parser("datasets", help="list zoo datasets with statistics")

    generate = commands.add_parser("generate", help="export a dataset as TSV")
    _add_dataset_argument(generate)
    generate.add_argument("--out", required=True, help="output directory")

    recommenders = commands.add_parser(
        "recommenders", help="compare relation recommenders (Table 5)"
    )
    _add_dataset_argument(recommenders)
    recommenders.add_argument(
        "--recommenders",
        nargs="+",
        choices=available_recommenders(),
        help="subset to compare (default: all)",
    )

    easy = commands.add_parser(
        "easy-negatives", help="mine easy negatives + audit (Tables 2/10)"
    )
    _add_dataset_argument(easy)

    complexity = commands.add_parser(
        "complexity", help="sampling-cost accounting (Table 3)"
    )
    _add_dataset_argument(complexity)
    complexity.add_argument("--fraction", type=float, default=0.025)

    analyze = commands.add_parser(
        "analyze", help="relation cardinalities + connectivity of a dataset"
    )
    _add_dataset_argument(analyze)

    train = commands.add_parser(
        "train",
        parents=[seed_parent, dtype_parent, store_parent, trace_parent],
        help="train a model (fused kernels) and save its checkpoint",
    )
    _add_dataset_argument(train)
    train.add_argument("--model", default="complex", choices=available_models())
    _add_training_arguments(train)
    train.add_argument("--batch-size", type=int, default=512)
    train.add_argument(
        "--optimizer", default="adam", choices=("adagrad", "adam", "sgd")
    )
    train.add_argument(
        "--out", required=True, metavar="PATH", help="checkpoint .npz path to write"
    )

    evaluate = commands.add_parser(
        "evaluate",
        parents=[seed_parent, dtype_parent, engine_parent, store_parent, trace_parent],
        help="train a model and compare evaluation protocols",
    )
    _add_dataset_argument(evaluate)
    evaluate.add_argument("--model", default="complex", choices=available_models())
    _add_training_arguments(evaluate)
    evaluate.add_argument(
        "--recommender", default="l-wd", choices=available_recommenders()
    )
    evaluate.add_argument(
        "--strategy", default="static", choices=("random", "probabilistic", "static")
    )
    evaluate.add_argument("--fraction", type=float, default=0.1)
    evaluate.add_argument(
        "--backend",
        default="memory",
        choices=("memory", "mmap"),
        help="parameter storage for the ranking passes: in-memory arrays, "
        "or a .npy mmap round-trip (out-of-core; bit-identical metrics)",
    )
    evaluate.add_argument(
        "--save-model",
        "--save",  # original spelling, kept as an alias
        dest="save_model",
        metavar="PATH",
        help="write the trained checkpoint to this .npz path "
        "(serve it with `repro serve --model-path PATH`)",
    )

    serve = commands.add_parser(
        "serve",
        parents=[seed_parent, store_parent],
        help="serve link prediction over HTTP (micro-batched)",
    )
    _add_dataset_argument(serve)
    serve.add_argument(
        "--model-path",
        action="append",
        metavar="[NAME=]PATH",
        help="checkpoint to serve (repeatable; bare paths are named by "
        "file stem); e.g. the output of `repro evaluate --save-model`",
    )
    serve.add_argument(
        "--model",
        default="distmult",
        choices=available_models(),
        help="model trained ad hoc when no checkpoint is given",
    )
    serve.add_argument("--epochs", type=int, default=4, help="ad-hoc training epochs")
    serve.add_argument("--dim", type=int, default=32, help="ad-hoc embedding dim")
    serve.add_argument(
        "--recommender",
        default="l-wd",
        choices=available_recommenders(),
        help="candidate-set recommender for filtered ranking",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="most concurrent requests coalesced into one scoring call",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch deadline: the latency ceiling batching may add",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU top-k result cache entries (0 disables)",
    )
    serve.add_argument(
        "--engine-workers",
        type=int,
        default=1,
        help="persistent pool workers for /v1/evaluate (1 = in-process)",
    )
    serve.add_argument(
        "--dry-run",
        action="store_true",
        help="load models and print the serving table without binding the port",
    )

    ingest = commands.add_parser(
        "ingest",
        help="stream TSV / N-Triples files into a compact triple store",
    )
    ingest.add_argument(
        "input_dir",
        metavar="INPUT_DIR",
        help="directory holding train/valid/test .tsv/.txt/.nt files "
        "(optionally .gz; valid/test optional)",
    )
    ingest.add_argument("--out", required=True, help="compact store directory to write")
    ingest.add_argument(
        "--format",
        default="auto",
        choices=("auto", "tsv", "nt"),
        help="input format (auto: .nt files parse as N-Triples, rest as TSV)",
    )
    ingest.add_argument(
        "--name",
        default=None,
        help="graph name in the store manifest (default: input directory name)",
    )

    shard = commands.add_parser(
        "shard",
        help="convert a checkpoint into .npy mmap shards (out-of-core eval)",
    )
    shard.add_argument(
        "checkpoint", metavar="CHECKPOINT", help=".npz checkpoint to shard"
    )
    shard.add_argument("--out", required=True, help="shard directory to write")
    shard.add_argument(
        "--max-shard-mb",
        type=float,
        default=None,
        metavar="MB",
        help="split parameter files larger than this (default: one file each)",
    )

    runs = commands.add_parser("runs", help="inspect the run journal")
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_commands.add_parser(
        "list", parents=[store_parent], help="list journaled runs"
    )
    _add_format_argument(runs_list)
    runs_list.add_argument(
        "--limit", type=int, default=None, help="only the most recent N runs"
    )
    runs_show = runs_commands.add_parser(
        "show", parents=[store_parent], help="show one run in full"
    )
    runs_show.add_argument("run_id", help="run id (prefixes accepted)")

    cache = commands.add_parser("cache", help="inspect the artifact cache")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_commands.add_parser(
        "ls", parents=[store_parent], help="list cached artifacts"
    )
    _add_format_argument(cache_ls)
    cache_commands.add_parser(
        "gc",
        parents=[store_parent],
        help="remove orphaned artifacts (interrupted writes)",
    )

    trace = commands.add_parser("trace", help="inspect journaled span traces")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_commands.add_parser(
        "show", parents=[store_parent], help="render one run's span trace"
    )
    trace_show.add_argument("run_id", help="run id (prefixes accepted)")
    trace_export = trace_commands.add_parser(
        "export",
        parents=[store_parent],
        help="export one run's timeline as Chrome trace_event JSON",
    )
    trace_export.add_argument("run_id", help="run id (prefixes accepted)")
    trace_export.add_argument(
        "--format",
        choices=("chrome",),
        default="chrome",
        help="export format (chrome trace_event JSON)",
    )
    trace_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON here instead of stdout",
    )

    top = commands.add_parser(
        "top", help="live dashboard over a serve instance's /metrics"
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8080/metrics",
        help="metrics endpoint to poll",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between scrapes",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (scripting / CI)",
    )

    lint = commands.add_parser(
        "lint",
        help="project-specific static analysis (rule catalog: docs/analysis.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to analyse (default: src)",
    )
    lint.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="project root violations are reported relative to",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    lint.add_argument(
        "--baseline",
        default="analysis-baseline.json",
        metavar="FILE",
        help="baseline file of grandfathered violations",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail if the baseline file is non-empty (CI mode)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    _add_format_argument(lint)

    bench = commands.add_parser(
        "bench", help="benchmark records: trend view + regression gate"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_trend = bench_commands.add_parser(
        "trend", help="every trackable metric across BENCH_*.json records"
    )
    bench_trend.add_argument(
        "--results",
        default="benchmarks/results",
        metavar="DIR",
        help="directory holding BENCH_*.json records",
    )
    _add_format_argument(bench_trend)
    bench_gate = bench_commands.add_parser(
        "gate", help="fail when fresh bench records regress vs a baseline"
    )
    bench_gate.add_argument(
        "--baseline",
        required=True,
        metavar="DIR",
        help="committed baseline BENCH_*.json directory",
    )
    bench_gate.add_argument(
        "--candidate",
        default="benchmarks/results",
        metavar="DIR",
        help="freshly produced BENCH_*.json directory to judge",
    )
    bench_gate.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="largest tolerated relative regression (0.2 = 20%%)",
    )
    bench_gate.add_argument(
        "--absolute",
        action="store_true",
        help="also gate absolute timings (seconds/latency); off by default "
        "because wall clock is machine-dependent",
    )
    _add_format_argument(bench_gate)
    return parser


_HANDLERS = {
    "run": _cmd_run,
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "recommenders": _cmd_recommenders,
    "easy-negatives": _cmd_easy_negatives,
    "complexity": _cmd_complexity,
    "analyze": _cmd_analyze,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "lint": _cmd_lint,
    "shard": _cmd_shard,
    "runs": _cmd_runs,
    "cache": _cmd_cache,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
