"""Command-line interface: the framework without writing Python.

``repro <command>`` exposes the workflows a downstream user reaches for
first:

* ``datasets``        — list the zoo with Table 4 statistics;
* ``generate``        — export a zoo dataset (triples + types) as TSV;
* ``recommenders``    — CR/RR/runtime comparison on one dataset (Table 5);
* ``easy-negatives``  — zero-score mining + false-negative audit (Tables 2/10);
* ``complexity``      — sampling-cost accounting (Table 3);
* ``train``           — train a model and write its checkpoint; the fused
  analytic kernels are the default fast path (``--no-fused`` opts out,
  ``--dtype float32`` halves parameter memory);
* ``evaluate``        — train a model, then compare the full ranking
  against the random and guided estimates (the quickstart as one command);
  ``--workers N`` fans the ranking passes across N scoring processes;
  ``--save-model PATH`` writes the trained checkpoint for ``serve``;
* ``serve``           — online link-prediction HTTP API over saved
  checkpoints, with micro-batching and candidate-filtered top-k;
* ``runs``            — list/show the experiment store's run journal;
* ``cache``           — list or garbage-collect the artifact cache.

Every command prints the same fixed-width tables the benchmark suite
writes, so CLI output and ``benchmarks/results/`` are directly comparable.

Store-aware commands resolve their root as ``--store`` > ``$REPRO_STORE``
> ``.repro_store``; ``evaluate --store PATH`` caches its artifacts and
journals the run, so repeating it is near-instant.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.experiments import (
    table2_easy_negatives,
    table4_dataset_statistics,
    table5_recommenders,
    table10_false_negative_audit,
)
from repro.bench.tables import render_table
from repro.core.complexity import sampling_complexity
from repro.core.protocol import EvaluationProtocol
from repro.engine.chunking import DEFAULT_CHUNK_SIZE
from repro.datasets.zoo import available_datasets, load
from repro.kg.io import save_graph_dir, write_types
from repro.models import Trainer, TrainingConfig, available_models, build_model
from repro.recommenders.registry import available_recommenders
from repro.store import (
    ExperimentStore,
    render_cache,
    render_run_detail,
    render_runs,
)
from repro.store.report import FORMATS


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="codex-s-lite",
        choices=available_datasets(),
        help="zoo dataset name",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help="experiment store root (default: $REPRO_STORE or .repro_store)",
    )


def _add_format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        default="table",
        choices=FORMATS,
        help="output format",
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = table4_dataset_statistics()
    print(render_table(rows, title="Zoo datasets (Table 4 statistics)"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load(args.dataset)
    out = Path(args.out)
    save_graph_dir(dataset.graph, out)
    write_types(out / "types.tsv", dataset.types, dataset.graph.entities)
    print(
        f"Wrote {dataset.graph.name}: train/valid/test.tsv + types.tsv under {out}"
    )
    return 0


def _cmd_recommenders(args: argparse.Namespace) -> int:
    names = tuple(args.recommenders) if args.recommenders else None
    rows = table5_recommenders((args.dataset,), names)
    print(render_table(rows, title=f"Recommenders on {args.dataset} (Table 5)"))
    return 0


def _cmd_easy_negatives(args: argparse.Namespace) -> int:
    rows, reports = table2_easy_negatives((args.dataset,))
    print(render_table(rows, title=f"Easy negatives on {args.dataset} (Table 2)"))
    audit = table10_false_negative_audit(reports)
    print()
    print(render_table(audit, title="False easy negatives (Table 10 audit)"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.kg.analysis import (
        connectivity_summary,
        relation_profiles,
        unseen_candidate_exposure,
    )

    dataset = load(args.dataset)
    graph = dataset.graph
    profiles = relation_profiles(graph)
    print(
        render_table(
            [p.as_row() for p in profiles],
            title=f"Relation cardinality profiles of {graph.name}",
        )
    )
    counts: dict[str, int] = {}
    for profile in profiles:
        counts[profile.cardinality.value] = counts.get(profile.cardinality.value, 0) + 1
    print(
        "\nCardinality classes: "
        + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    )
    exposure = unseen_candidate_exposure(graph)
    print(
        f"Unseen test answers (the mass PT cannot recall): "
        f"heads {exposure['head']:.1%}, tails {exposure['tail']:.1%}"
    )
    print()
    print(
        render_table(
            [connectivity_summary(graph).as_row()],
            title="Connectivity of the training graph",
        )
    )
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    row = sampling_complexity(load(args.dataset).graph, args.fraction).as_row()
    print(
        render_table(
            [row], title=f"Sampling complexity at {args.fraction:.1%} (Table 3)"
        )
    )
    return 0


def _add_training_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs shared by ``train`` and ``evaluate``."""
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--loss", default="softplus")
    parser.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="embedding parameter dtype (float32 halves memory)",
    )
    parser.add_argument(
        "--no-fused",
        action="store_true",
        help="train through the autodiff engine even when the model has "
        "an analytic kernel (debugging / A-B timing)",
    )


def _cmd_train(args: argparse.Namespace) -> int:
    import time

    from repro.models import save_model

    dataset = load(args.dataset)
    graph = dataset.graph
    model = build_model(
        args.model,
        graph.num_entities,
        graph.num_relations,
        dim=args.dim,
        seed=args.seed,
        dtype=args.dtype,
    )
    config = TrainingConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        loss=args.loss,
        optimizer=args.optimizer,
        seed=args.seed,
        use_fused=not args.no_fused,
    )
    path_note = " (autodiff path)" if args.no_fused else ""
    print(
        f"Training {args.model} ({args.dtype}) on {graph.name} "
        f"for {args.epochs} epochs{path_note} ..."
    )
    start = time.perf_counter()
    history = Trainer(config).fit(model, graph)
    seconds = time.perf_counter() - start
    if history.losses:
        print(f"loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    # Reciprocal-relation models (ConvE) train on inverse-augmented batches.
    per_epoch = len(graph.train) * (
        2 if getattr(model, "inverse_offset", None) is not None else 1
    )
    triples = per_epoch * args.epochs
    if triples:
        print(f"{seconds:.2f} s ({triples / max(seconds, 1e-9):,.0f} triples/s)")
    else:
        print(f"{seconds:.2f} s (0 epochs: nothing trained)")
    save_model(model, args.out)
    print(f"Saved checkpoint to {args.out} (serve it with `repro serve --model-path {args.out}`)")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    import time

    # ``--store`` with no value opts into the default ($REPRO_STORE) root.
    store = ExperimentStore.from_env(args.store or None) if args.store is not None else None
    wall_start = time.perf_counter()
    dataset = load(args.dataset)
    graph = dataset.graph
    model = build_model(
        args.model,
        graph.num_entities,
        graph.num_relations,
        dim=args.dim,
        seed=args.seed,
        dtype=args.dtype,
    )
    config = TrainingConfig(
        epochs=args.epochs,
        lr=args.lr,
        loss=args.loss,
        seed=args.seed,
        use_fused=not args.no_fused,
    )
    print(f"Training {args.model} on {graph.name} for {args.epochs} epochs ...")
    history = Trainer(config).fit(model, graph)
    if history.losses:
        print(f"loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    if args.save_model:
        from repro.models import save_model

        save_model(model, args.save_model)
        print(f"Saved checkpoint to {args.save_model}")

    guided = EvaluationProtocol(
        graph,
        recommender=args.recommender,
        strategy=args.strategy,
        sample_fraction=args.fraction,
        types=dataset.types,
        seed=args.seed,
        store=store,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )
    guided.prepare()
    random_protocol = EvaluationProtocol(
        graph, strategy="random", sample_fraction=args.fraction, seed=args.seed,
        store=store, workers=args.workers, chunk_size=args.chunk_size,
    )
    truth = guided.evaluate_full(model)
    random_estimate = random_protocol.evaluate(model)
    guided_estimate = guided.evaluate(model)
    rows = [
        {
            "Protocol": "full filtered ranking",
            "MRR": truth.metrics.mrr,
            "Hits@10": truth.metrics.hits_at(10),
            "Seconds": truth.seconds,
            "Scores": truth.num_scored,
        },
        {
            "Protocol": f"random @ {args.fraction:.0%}",
            "MRR": random_estimate.metrics.mrr,
            "Hits@10": random_estimate.metrics.hits_at(10),
            "Seconds": random_estimate.seconds,
            "Scores": random_estimate.num_scored,
        },
        {
            "Protocol": f"{args.strategy} ({args.recommender}) @ {args.fraction:.0%}",
            "MRR": guided_estimate.metrics.mrr,
            "Hits@10": guided_estimate.metrics.hits_at(10),
            "Seconds": guided_estimate.seconds,
            "Scores": guided_estimate.num_scored,
        },
    ]
    print()
    print(render_table(rows, title="Evaluation comparison"))
    random_error = abs(random_estimate.metrics.mrr - truth.metrics.mrr)
    guided_error = abs(guided_estimate.metrics.mrr - truth.metrics.mrr)
    print(
        f"\nMRR error: random={random_error:.3f}, guided={guided_error:.3f}"
    )
    if store is not None:
        record = store.journal.append(
            "cli:evaluate",
            config={
                "dataset": args.dataset,
                "model": args.model,
                "epochs": args.epochs,
                "dim": args.dim,
                "lr": args.lr,
                "loss": args.loss,
                "recommender": args.recommender,
                "strategy": args.strategy,
                "fraction": args.fraction,
                "seed": args.seed,
                "workers": args.workers,
                "dtype": args.dtype,
            },
            seconds=time.perf_counter() - wall_start,
            metrics={
                "mrr": truth.metrics.mrr,
                "hits@10": truth.metrics.hits_at(10),
                "estimated_mrr": guided_estimate.metrics.mrr,
            },
            cache_hit=guided.preparation is not None and guided.preparation.from_cache,
        )
        print(f"Journaled run {record.run_id} in {store.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import LinkPredictionService, ModelRegistry, run_server

    store = ExperimentStore.from_env(args.store)
    dataset = load(args.dataset)
    registry = ModelRegistry(
        store, dataset.graph, types=dataset.types, recommender=args.recommender
    )
    for spec in args.model_path or ():
        # Accept `NAME=PATH` or a bare path (named by its file stem).  A
        # spec that exists on disk is always one bare path, so '=' inside
        # a real filename (`run=3/dm.npz`) never splits; otherwise split
        # at the first '=' unless the would-be name contains a separator.
        if Path(spec).exists():
            name, path = "", spec
        else:
            name, sep, path = spec.partition("=")
            if not sep or "/" in name or "\\" in name:
                name, path = "", spec
        registry.register_path(path, name=name or None)
    discovered = registry.discover()
    if discovered:
        print(f"Discovered checkpoints in {registry.checkpoint_dir}: {', '.join(discovered)}")
    if not len(registry):
        print(
            f"Training an ad-hoc {args.model} (no --model-path given, "
            f"none under {registry.checkpoint_dir}) ..."
        )
        model = build_model(
            args.model,
            dataset.graph.num_entities,
            dataset.graph.num_relations,
            dim=args.dim,
            seed=args.seed,
        )
        Trainer(TrainingConfig(epochs=args.epochs, seed=args.seed)).fit(
            model, dataset.graph
        )
        registry.register(args.model, model)
    rows = [
        {
            "Name": row["name"],
            "Model": row["model"],
            "Dim": row["dim"],
            "Params": row["parameters"],
            "Recommender": row["recommender"],
            "Checkpoint": row["checkpoint"] or "(in-memory)",
        }
        for row in registry.rows()
    ]
    print(render_table(rows, title=f"Serving {dataset.graph.name} ({len(registry)} models)"))
    if args.dry_run:
        print("Dry run: not binding the port.")
        return 0
    service = LinkPredictionService(
        registry,
        max_batch_size=args.max_batch,
        max_wait=args.max_wait_ms / 1000.0,
        cache_size=args.cache_size,
    )
    print(
        f"Serving on http://{args.host}:{args.port} "
        f"(max batch {args.max_batch}, max wait {args.max_wait_ms} ms) — Ctrl-C stops."
    )
    run_server(service, host=args.host, port=args.port)
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    store = ExperimentStore.from_env(args.store)
    if args.runs_command == "list":
        print(render_runs(store.journal, fmt=args.format, limit=args.limit))
        return 0
    record = store.journal.get(args.run_id)
    if record is None:
        print(f"no run matching {args.run_id!r} in {store.journal.path}")
        return 1
    print(render_run_detail(record))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ExperimentStore.from_env(args.store)
    if args.cache_command == "ls":
        print(render_cache(store.artifacts, fmt=args.format))
        return 0
    report = store.gc()
    print(
        f"Removed {report.num_removed} orphaned files "
        f"({report.freed_bytes / 1024:.1f} KB) from {store.artifacts.root}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast, accurate evaluation of knowledge graph link predictors.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list zoo datasets with statistics")

    generate = commands.add_parser("generate", help="export a dataset as TSV")
    _add_dataset_argument(generate)
    generate.add_argument("--out", required=True, help="output directory")

    recommenders = commands.add_parser(
        "recommenders", help="compare relation recommenders (Table 5)"
    )
    _add_dataset_argument(recommenders)
    recommenders.add_argument(
        "--recommenders",
        nargs="+",
        choices=available_recommenders(),
        help="subset to compare (default: all)",
    )

    easy = commands.add_parser(
        "easy-negatives", help="mine easy negatives + audit (Tables 2/10)"
    )
    _add_dataset_argument(easy)

    complexity = commands.add_parser(
        "complexity", help="sampling-cost accounting (Table 3)"
    )
    _add_dataset_argument(complexity)
    complexity.add_argument("--fraction", type=float, default=0.025)

    analyze = commands.add_parser(
        "analyze", help="relation cardinalities + connectivity of a dataset"
    )
    _add_dataset_argument(analyze)

    train = commands.add_parser(
        "train", help="train a model (fused kernels) and save its checkpoint"
    )
    _add_dataset_argument(train)
    train.add_argument("--model", default="complex", choices=available_models())
    _add_training_arguments(train)
    train.add_argument("--batch-size", type=int, default=512)
    train.add_argument(
        "--optimizer", default="adam", choices=("adagrad", "adam", "sgd")
    )
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--out", required=True, metavar="PATH", help="checkpoint .npz path to write"
    )

    evaluate = commands.add_parser(
        "evaluate", help="train a model and compare evaluation protocols"
    )
    _add_dataset_argument(evaluate)
    evaluate.add_argument("--model", default="complex", choices=available_models())
    _add_training_arguments(evaluate)
    evaluate.add_argument(
        "--recommender", default="l-wd", choices=available_recommenders()
    )
    evaluate.add_argument(
        "--strategy", default="static", choices=("random", "probabilistic", "static")
    )
    evaluate.add_argument("--fraction", type=float, default=0.1)
    evaluate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scoring processes for the ranking passes "
        "(1 = serial, -1 = all cores; results are identical at any count)",
    )
    evaluate.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="queries ranked per score-matrix chunk",
    )
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--save-model",
        "--save",  # original spelling, kept as an alias
        dest="save_model",
        metavar="PATH",
        help="write the trained checkpoint to this .npz path "
        "(serve it with `repro serve --model-path PATH`)",
    )
    evaluate.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        help="cache artifacts + journal the run in this experiment store "
        "(no value: $REPRO_STORE or .repro_store)",
    )

    serve = commands.add_parser(
        "serve", help="serve link prediction over HTTP (micro-batched)"
    )
    _add_dataset_argument(serve)
    serve.add_argument(
        "--model-path",
        action="append",
        metavar="[NAME=]PATH",
        help="checkpoint to serve (repeatable; bare paths are named by "
        "file stem); e.g. the output of `repro evaluate --save-model`",
    )
    serve.add_argument(
        "--model",
        default="distmult",
        choices=available_models(),
        help="model trained ad hoc when no checkpoint is given",
    )
    serve.add_argument("--epochs", type=int, default=4, help="ad-hoc training epochs")
    serve.add_argument("--dim", type=int, default=32, help="ad-hoc embedding dim")
    serve.add_argument(
        "--recommender",
        default="l-wd",
        choices=available_recommenders(),
        help="candidate-set recommender for filtered ranking",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="most concurrent requests coalesced into one scoring call",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch deadline: the latency ceiling batching may add",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU top-k result cache entries (0 disables)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--dry-run",
        action="store_true",
        help="load models and print the serving table without binding the port",
    )
    _add_store_argument(serve)

    runs = commands.add_parser("runs", help="inspect the run journal")
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_commands.add_parser("list", help="list journaled runs")
    _add_store_argument(runs_list)
    _add_format_argument(runs_list)
    runs_list.add_argument(
        "--limit", type=int, default=None, help="only the most recent N runs"
    )
    runs_show = runs_commands.add_parser("show", help="show one run in full")
    runs_show.add_argument("run_id", help="run id (prefixes accepted)")
    _add_store_argument(runs_show)

    cache = commands.add_parser("cache", help="inspect the artifact cache")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_commands.add_parser("ls", help="list cached artifacts")
    _add_store_argument(cache_ls)
    _add_format_argument(cache_ls)
    cache_gc = cache_commands.add_parser(
        "gc", help="remove orphaned artifacts (interrupted writes)"
    )
    _add_store_argument(cache_gc)
    return parser


_HANDLERS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "recommenders": _cmd_recommenders,
    "easy-negatives": _cmd_easy_negatives,
    "complexity": _cmd_complexity,
    "analyze": _cmd_analyze,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "serve": _cmd_serve,
    "runs": _cmd_runs,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
