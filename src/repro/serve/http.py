"""Stdlib JSON HTTP front end for :class:`LinkPredictionService`.

Routes::

    GET  /healthz     -> service.health()
    GET  /metrics     -> service.metrics_text()   (Prometheus text format)
    GET  /v1/models   -> {"models": service.models()}
    POST /v1/rank     -> service.rank(**body)
    POST /v1/score    -> {"results": service.score(**body)}
    POST /v1/evaluate -> service.evaluate_model(**body)

``ThreadingHTTPServer`` gives one thread per connection; concurrency
converges in the :class:`~repro.serve.scheduler.BatchScheduler`, which is
exactly what makes concurrent HTTP clients coalesce into micro-batches.
Errors map to JSON bodies: unknown names -> 404, bad arguments -> 400.

Every response carries a request id — echoed from the client's
``X-Request-Id`` header when present (sanitized: control characters
stripped, length clamped), generated otherwise — both as the
``X-Request-Id`` response header and as a ``request_id`` field of every
JSON payload (errors included), so latency histograms and logged
failures can be correlated to individual requests.

Each request also runs under a fresh
:class:`~repro.obs.context.TraceContext` carrying that request id: the
``serve.request`` span, the scheduler's batch, any engine run (and its
pool workers), and the one structured ``serve.request`` log line emitted
per request all share the same ``trace_id``.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import get_tracer
from repro.obs.context import new_context, use_context
from repro.obs.log import log_event, sanitize_request_id
from repro.serve.service import LinkPredictionService

#: Largest accepted request body (bytes) — serving requests are tiny.
MAX_BODY_BYTES = 1 << 20

_RANK_FIELDS = {"model", "anchor", "relation", "side", "k", "filter_known", "candidates"}
_SCORE_FIELDS = {"model", "triples", "sides", "candidates"}
_EVALUATE_FIELDS = {"model", "split"}


class _Handler(BaseHTTPRequestHandler):
    server: "ServeHTTPServer"

    # ------------------------------------------------------------------
    def _request_id(self) -> str:
        # Computed once per request (in _handle_request); handler
        # instances are reused across keep-alive requests, so the cached
        # id is reset there, not here.
        request_id = getattr(self, "_rid", "")
        if not request_id:
            incoming = sanitize_request_id(self.headers.get("X-Request-Id", ""))
            request_id = self._rid = incoming or uuid.uuid4().hex[:16]
        return request_id

    def _send(self, status: int, payload: dict | list) -> None:
        request_id = self._request_id()
        if isinstance(payload, dict):
            payload = {**payload, "request_id": request_id}
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("X-Request-Id", request_id)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        # Prometheus exposition-format convention for /metrics scrapes.
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("X-Request-Id", self._request_id())
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    @staticmethod
    def _check_fields(body: dict, allowed: set, required: set) -> None:
        unknown = set(body) - allowed
        if unknown:
            raise ValueError(f"unknown fields: {', '.join(sorted(unknown))}")
        missing = required - set(body)
        if missing:
            raise ValueError(f"missing fields: {', '.join(sorted(missing))}")

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle_request(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle_request(self._route_post)

    def _handle_request(self, route) -> None:
        """Run one route under a fresh trace context; log one line.

        The context (trace id + request id) is what correlates this
        request's span timeline, scheduler batch, engine run, worker
        chunks, and the structured ``serve.request`` log line emitted
        here.
        """
        self._rid = ""
        self._status = 0
        request_id = self._request_id()
        start = time.perf_counter()
        with use_context(new_context(request_id=request_id)):
            with get_tracer().span("serve.request"):
                route()
            log_event(
                "serve.request",
                method=self.command,
                path=self.path,
                status=self._status,
                seconds=round(time.perf_counter() - start, 6),
            )

    def _route_get(self) -> None:
        service = self.server.service
        try:
            if self.path == "/healthz":
                self._send(200, service.health())
            elif self.path == "/metrics":
                self._send_text(200, service.metrics_text())
            elif self.path == "/v1/models":
                self._send(200, {"models": service.models()})
            else:
                self._send(404, {"error": f"unknown path {self.path}"})
        except Exception as error:  # noqa: BLE001 — must answer the socket
            self._send(500, {"error": str(error)})

    def _route_post(self) -> None:
        service = self.server.service
        try:
            body = self._read_body()
            if self.path == "/v1/rank":
                self._check_fields(body, _RANK_FIELDS, {"model", "anchor", "relation"})
                self._send(200, service.rank(**body))
            elif self.path == "/v1/score":
                self._check_fields(body, _SCORE_FIELDS, {"model", "triples"})
                if "sides" in body:
                    body["sides"] = tuple(body["sides"])
                self._send(200, {"results": service.score(**body)})
            elif self.path == "/v1/evaluate":
                self._check_fields(body, _EVALUATE_FIELDS, {"model"})
                self._send(200, service.evaluate_model(**body))
            else:
                self._send(404, {"error": f"unknown path {self.path}"})
        except KeyError as error:
            # Unknown model / entity / relation names are lookup misses.
            self._send(404, {"error": str(error.args[0]) if error.args else str(error)})
        except (ValueError, TypeError, json.JSONDecodeError) as error:
            self._send(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 — must answer the socket
            self._send(500, {"error": str(error)})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the deployment wrapper's concern


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service instance.

    ``port=0`` binds an ephemeral port (tests, side-by-side serving);
    the bound port is available as :attr:`port`.
    """

    daemon_threads = True

    def __init__(
        self,
        service: LinkPredictionService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ):
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests / embedding); returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread


def run_server(
    service: LinkPredictionService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Serve until interrupted, then flush the scheduler (CLI entry)."""
    server = ServeHTTPServer(service, host=host, port=port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
