"""Named serving checkpoints + lazily built candidate sets.

The artifact cache (:mod:`repro.store.artifacts`) is key-addressed —
perfect for provenance-exact reuse, useless for "serve the model I call
``complex-prod``".  The registry adds the human-addressable layer: a
``serve/`` directory of named ``.npz`` checkpoints under the experiment
store root, loaded lazily and validated against the serving graph.

Candidate sets are a per-recommender (not per-checkpoint) cost, so the
registry builds them lazily on first use, shares them between models
that use the same recommender, and persists them through the store's
artifact cache so a service restart skips the recommender fit entirely.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.candidates import CandidateSets, build_static_candidates
from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.models.io import load_model, save_model
from repro.recommenders.registry import build_recommender
from repro.store.store import ExperimentStore

#: Subdirectory of the store root holding named serving checkpoints.
CHECKPOINT_DIR = "serve"


def parse_model_path(spec: str) -> tuple[str | None, str]:
    """Split one ``[NAME=]PATH`` checkpoint spec into ``(name, path)``.

    Accepts ``NAME=PATH`` or a bare path (``name`` is then ``None`` and
    callers fall back to the file stem).  A spec that exists on disk is
    always one bare path, so '=' inside a real filename (``run=3/dm.npz``)
    never splits; otherwise split at the first '=' unless the would-be
    name contains a path separator.  Shared by the CLI's ``--model-path``
    and :class:`~repro.experiment.ServeSpec.model_paths`.
    """
    if Path(spec).exists():
        return None, spec
    name, sep, path = spec.partition("=")
    if not sep or "/" in name or "\\" in name:
        return None, spec
    return name or None, path


@dataclass
class ServingEntry:
    """One named model in the registry.

    ``model`` is populated lazily from ``path`` on first access; a
    ``None`` path means the model only lives in this process (it was
    registered with ``persist=False``).
    """

    name: str
    path: Path | None = None
    model: object | None = field(default=None, repr=False)
    recommender: str | None = None  # None = the registry default

    @property
    def loaded(self) -> bool:
        return self.model is not None


class ModelRegistry:
    """Named checkpoints + shared candidate sets for one serving graph.

    Parameters
    ----------
    store:
        The :class:`~repro.store.ExperimentStore` (or its root path)
        whose ``serve/`` directory holds the named checkpoints and whose
        artifact cache persists the built candidate sets.
    graph:
        The knowledge graph served against; checkpoints must match its
        vocabulary sizes.
    types:
        Entity types, required by the typed recommenders.
    recommender:
        Default recommender for candidate filtering (entries may
        override it).
    include_observed:
        Union observed (PT) entities into the static sets — the paper's
        practical default.
    """

    def __init__(
        self,
        store: ExperimentStore | str | os.PathLike[str],
        graph: KnowledgeGraph,
        types: TypeStore | None = None,
        recommender: str = "l-wd",
        include_observed: bool = True,
    ):
        if not isinstance(store, ExperimentStore):
            store = ExperimentStore(store)
        self.store = store
        self.graph = graph
        self.types = types
        self.default_recommender = recommender
        self.include_observed = include_observed
        self.checkpoint_dir = store.root / CHECKPOINT_DIR
        self._entries: dict[str, ServingEntry] = {}
        self._candidates: dict[str, CandidateSets] = {}  # by recommender name
        self._lock = threading.RLock()
        # Candidate builds can take seconds-to-minutes on large graphs;
        # they serialise on their own lock so names()/model()/describe()
        # (and hence /healthz, /v1/models) never block behind a build.
        self._candidates_build_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model,
        recommender: str | None = None,
        persist: bool = True,
    ) -> ServingEntry:
        """Register an in-memory model under ``name``.

        With ``persist`` (the default) the checkpoint is also written to
        ``<root>/serve/<name>.npz`` so the next process can
        :meth:`discover` it.  ``persist=False`` admits wrapper scorers
        (anything with the batch-scoring surface) that cannot round-trip
        through ``repro.models.io``.
        """
        self._check_vocab(name, model)
        path: Path | None = None
        if persist:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            path = self.checkpoint_dir / f"{name}.npz"
            save_model(model, path)
        entry = ServingEntry(name=name, path=path, model=model, recommender=recommender)
        with self._lock:
            self._entries[name] = entry
        return entry

    def register_path(
        self,
        path: str | os.PathLike[str],
        name: str | None = None,
        recommender: str | None = None,
    ) -> ServingEntry:
        """Register a checkpoint file; loading is deferred to first use."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"checkpoint {path} does not exist")
        entry = ServingEntry(name=name or path.stem, path=path, recommender=recommender)
        with self._lock:
            self._entries[entry.name] = entry
        return entry

    def discover(self) -> list[str]:
        """Register every ``serve/*.npz`` checkpoint not yet known.

        Returns the newly registered names (sorted, for determinism).
        """
        added: list[str] = []
        with self._lock:
            for path in sorted(self.checkpoint_dir.glob("*.npz")):
                if path.stem not in self._entries:
                    self._entries[path.stem] = ServingEntry(name=path.stem, path=path)
                    added.append(path.stem)
        return added

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entry(self, name: str) -> ServingEntry:
        with self._lock:
            if name not in self._entries:
                raise KeyError(
                    f"unknown model {name!r}; serving: {', '.join(self.names()) or '(none)'}"
                )
            return self._entries[name]

    def model(self, name: str):
        """The model behind ``name``, loading its checkpoint on first use."""
        entry = self.entry(name)
        with self._lock:
            if entry.model is None:
                assert entry.path is not None  # register() always sets one
                model = load_model(entry.path)
                self._check_vocab(name, model)
                entry.model = model
            return entry.model

    def _check_vocab(self, name: str, model) -> None:
        if (
            model.num_entities != self.graph.num_entities
            or model.num_relations != self.graph.num_relations
        ):
            raise ValueError(
                f"model {name!r} embeds {model.num_entities} entities / "
                f"{model.num_relations} relations but the serving graph "
                f"{self.graph.name!r} has {self.graph.num_entities} / "
                f"{self.graph.num_relations}"
            )

    # ------------------------------------------------------------------
    # Candidate sets
    # ------------------------------------------------------------------
    def _candidates_key(self, recommender: str) -> str:
        from repro.store.keys import cache_key, graph_fingerprint

        return cache_key(
            "serve-candidates",
            {
                "graph": graph_fingerprint(self.graph),
                "recommender": recommender,
                "include_observed": self.include_observed,
            },
        )

    def candidates(self, name: str) -> CandidateSets:
        """The candidate sets the named model filters through.

        Built lazily on first use (recommender fit + thresholding),
        shared across models with the same recommender, and persisted in
        the store's artifact cache so restarts skip the build.
        """
        entry = self.entry(name)
        recommender = entry.recommender or self.default_recommender
        with self._candidates_build_lock:
            cached = self._candidates.get(recommender)
            if cached is not None:
                return cached
            key = self._candidates_key(recommender)
            sets = self.store.artifacts.get_candidates(key)
            if sets is None:
                fitted = build_recommender(recommender).fit(self.graph, self.types)
                sets = build_static_candidates(
                    fitted, self.graph, include_observed=self.include_observed
                )
                self.store.artifacts.put_candidates(
                    key,
                    sets,
                    labels={"graph": self.graph.name, "recommender": recommender},
                )
            self._candidates[recommender] = sets
            return sets

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self, name: str) -> dict:
        """One ``/v1/models`` row; loads the checkpoint if necessary."""
        entry = self.entry(name)
        model = self.model(name)
        recommender = entry.recommender or self.default_recommender
        return {
            "name": name,
            "model": getattr(model, "name", type(model).__name__),
            "dim": getattr(model, "dim", None),
            "num_entities": model.num_entities,
            "num_relations": model.num_relations,
            "parameters": model.num_parameters() if hasattr(model, "num_parameters") else None,
            "checkpoint": str(entry.path) if entry.path is not None else None,
            "recommender": recommender,
            "candidates_built": recommender in self._candidates,
        }

    def rows(self) -> list[dict]:
        """``describe`` every model (sorted), for tables and ``/v1/models``."""
        return [self.describe(name) for name in self.names()]

    def __repr__(self) -> str:
        return (
            f"ModelRegistry({str(self.store.root)!r}, graph={self.graph.name!r}, "
            f"{len(self)} models)"
        )
