"""Micro-batching request scheduler for the serving layer.

Online traffic arrives one query at a time, but the scoring surface is
batched: :meth:`~repro.models.base.KGEModel.score_candidates_batch`
scores ``b`` same-``(relation, side)`` queries in one vectorized call,
and in the serving regime (large score slabs, accelerator or remote
scorers) the per-call cost dominates the per-row cost.  The scheduler
closes that gap: concurrent requests queue per *batch key* —
``(model, relation, side, candidate mode)`` — and a single dispatcher
thread drains each queue in micro-batches bounded by ``max_batch_size``
and a ``max_wait`` deadline measured from the oldest queued request.

The contract mirrors the evaluation engine's: batching is purely an
execution knob.  Scoring is row-local, so a request's result is
bitwise-identical whether its batch held 1 query or 64.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.kg.graph import Side
from repro.obs import get_tracer
from repro.obs.context import current_context, use_context
from repro.obs.metrics import MetricsRegistry

#: Batch-size histogram buckets: powers of two up to the default ceiling.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

BatchKey = tuple[str, int, str, str]
"""``(model name, relation id, side, candidate mode)`` — requests sharing
a key can share one vectorized scoring call."""


@dataclass(frozen=True)
class RankQuery:
    """One schedulable serving query.

    ``kind`` selects the post-processing applied to the query's score
    row: ``"topk"`` returns the best ``k`` candidates, ``"rank"``
    returns the filtered rank of ``truth`` (the offline protocol's
    semantics).  ``candidates`` picks the scoring axis: ``"filtered"``
    ranks against the model's static candidate set, ``"all"`` against
    the whole entity vocabulary.
    """

    model: str
    relation: int
    side: Side
    anchor: int
    kind: str = "topk"
    k: int = 10
    truth: int | None = None
    filter_known: bool = True
    candidates: str = "filtered"

    def __post_init__(self) -> None:
        if self.kind not in ("topk", "rank"):
            raise ValueError(f"unknown query kind {self.kind!r}")
        if self.candidates not in ("filtered", "all"):
            raise ValueError(f"unknown candidate mode {self.candidates!r}")
        if self.kind == "rank" and self.truth is None:
            raise ValueError("rank queries need a truth entity")
        if self.kind == "topk" and self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def batch_key(self) -> BatchKey:
        return (self.model, self.relation, self.side, self.candidates)


class PendingResult:
    """A one-shot future the scheduler resolves when the batch scores."""

    __slots__ = ("_event", "_value", "_error", "batch_size")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None
        self.batch_size = 0  # how many requests shared the scoring call

    def _resolve(self, value, batch_size: int) -> None:
        self._value = value
        self.batch_size = batch_size
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block until the batch resolves; re-raises scoring errors."""
        if not self._event.wait(timeout):
            raise TimeoutError("serving request did not resolve in time")
        if self._error is not None:
            raise self._error
        return self._value


class BatchScheduler:
    """Coalesce concurrent queries into per-key micro-batches.

    Parameters
    ----------
    score_batch:
        ``score_batch(key, queries) -> list[result]`` — one result per
        query, computed with a single vectorized model call (the
        service provides this).
    max_batch_size:
        Most queries scored per call; ``1`` disables coalescing (the
        sequential baseline the load test compares against).
    max_wait:
        Seconds a queued request may wait for company before its batch
        is dispatched anyway — the latency ceiling batching may add.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` the
        scheduler publishes its queue-depth gauge, batch-size histogram
        and batch counter into (the service passes its own).
    """

    def __init__(
        self,
        score_batch: Callable[[BatchKey, list[RankQuery]], list],
        max_batch_size: int = 64,
        max_wait: float = 0.002,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._score_batch = score_batch
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self._queue_depth = self._batch_hist = self._batches_total = None
        if metrics is not None:
            self._queue_depth = metrics.gauge(
                "repro_serve_queue_depth", "Requests queued awaiting a batch"
            )
            self._batch_hist = metrics.histogram(
                "repro_serve_batch_size",
                "Requests coalesced per scoring call",
                buckets=BATCH_SIZE_BUCKETS,
            )
            self._batches_total = metrics.counter(
                "repro_serve_batches_total", "Micro-batches dispatched"
            )
        self._cond = threading.Condition()
        self._queues: dict[BatchKey, deque] = {}
        self._closed = False
        self.num_requests = 0
        self.num_batches = 0
        self.num_batched_requests = 0
        self.max_batch_observed = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, query: RankQuery) -> PendingResult:
        """Enqueue one query; returns immediately with its pending result."""
        pending = PendingResult()
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            # The submitter's trace context rides along so the dispatcher
            # thread can score the batch under the originating request's
            # trace id (the oldest query's context wins for the batch).
            self._queues.setdefault(query.batch_key, deque()).append(
                (query, pending, time.monotonic(), current_context())
            )
            self.num_requests += 1
            if self._queue_depth is not None:
                self._queue_depth.inc()
            self._cond.notify_all()
        return pending

    def _oldest_key(self) -> tuple[BatchKey | None, float]:
        key, arrival = None, float("inf")
        for candidate, queue in self._queues.items():
            if queue and queue[0][2] < arrival:
                key, arrival = candidate, queue[0][2]
        return key, arrival

    def _full_key(self) -> BatchKey | None:
        for candidate, queue in self._queues.items():
            if len(queue) >= self.max_batch_size:
                return candidate
        return None

    def _loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    key, arrival = self._oldest_key()
                    if key is not None:
                        break
                    if self._closed:
                        return
                    self._cond.wait()
                # Let the oldest batch fill until its deadline — but an
                # expired deadline dispatches first (latency bound), and
                # a *different* key reaching a full batch jumps the queue
                # rather than waiting out this one's deadline.  close()
                # flushes immediately so shutdown drains every queue.
                deadline = arrival + self.max_wait
                while len(self._queues[key]) < self.max_batch_size and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    full = self._full_key()
                    if full is not None:
                        key = full
                        break
                    self._cond.wait(timeout=remaining)
                queue = self._queues[key]
                batch = [
                    queue.popleft()
                    for _ in range(min(len(queue), self.max_batch_size))
                ]
                if not queue:
                    del self._queues[key]
            self._dispatch(key, batch)

    def _dispatch(self, key: BatchKey, batch: list) -> None:
        queries = [query for query, _, _, _ in batch]
        if self._queue_depth is not None:
            self._queue_depth.dec(len(batch))
        try:
            with use_context(batch[0][3]), get_tracer().span("serve.batch"):
                results = self._score_batch(key, queries)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"score_batch returned {len(results)} results for "
                    f"{len(batch)} queries"
                )
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            for _, pending, _, _ in batch:
                pending._fail(error)
            return
        self.num_batches += 1
        self.num_batched_requests += len(batch)
        self.max_batch_observed = max(self.max_batch_observed, len(batch))
        if self._batch_hist is not None:
            self._batch_hist.observe(len(batch))
            self._batches_total.inc()
        for (_, pending, _, _), value in zip(batch, results):
            pending._resolve(value, len(batch))

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return self.num_batched_requests / self.num_batches

    def stats(self) -> dict:
        """Scheduler counters for ``/healthz``."""
        return {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_batch_size": self.max_batch_observed,
        }

    def close(self, timeout: float = 5.0) -> None:
        """Flush every queued request, then stop the dispatcher thread."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"BatchScheduler(max_batch_size={self.max_batch_size}, "
            f"max_wait={self.max_wait}, batches={self.num_batches}, "
            f"mean={self.mean_batch_size:.1f})"
        )
