"""The link-prediction serving surface: rank / score / models / health.

One :class:`LinkPredictionService` fronts a :class:`~repro.serve.registry.
ModelRegistry` with the :class:`~repro.serve.scheduler.BatchScheduler`
and an LRU result cache:

* :meth:`rank` — top-k entity completion for one query, scored against
  the model's static candidate set (or the full vocabulary) with known
  true answers optionally filtered out;
* :meth:`score` — triple scores *and filtered ranks* computed by exactly
  the offline engine's kernel (`score_candidates_batch` +
  `collect_known_answers` + `chunk_filtered_ranks`), so a served rank is
  bitwise-identical to the same query's rank in
  :func:`repro.core.ranking.evaluate_full`;
* :meth:`evaluate_model` — a full offline evaluation of one registered
  model, executed on a **service-owned persistent worker pool**
  (``engine_workers > 1``) that stays warm across requests — the shared
  state is published into shared memory once per model and reused until
  :meth:`close`;
* :meth:`models` / :meth:`health` — introspection for ``/v1/models`` and
  ``/healthz``.

Every response is a plain JSON-serialisable dict, so the HTTP layer and
the in-process client expose byte-identical payloads.
"""

from __future__ import annotations

import copy
import threading
import time

import numpy as np

from repro.engine.chunking import chunk_filtered_ranks, collect_known_answers
from repro.engine.engine import EvaluationEngine
from repro.engine.pool import PersistentWorkerPool
from repro.kg.graph import SIDES, Side
from repro.obs.metrics import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import BatchKey, BatchScheduler, RankQuery
from repro.store.lru import LRUCache

#: Default ceiling on requests coalesced into one scoring call.
DEFAULT_MAX_BATCH = 64

#: Default micro-batch deadline (seconds): the latency batching may add.
DEFAULT_MAX_WAIT = 0.002

#: Default top-k result cache capacity (entries, not bytes).
DEFAULT_CACHE_SIZE = 1024

#: Default per-request resolution timeout (seconds).
DEFAULT_TIMEOUT = 30.0


def _engine_metrics_text(exclude: MetricsRegistry) -> str:
    """Engine-pool families from the process-global registry.

    The engine publishes its shm/pool gauges process-globally (workers
    must never touch a registry), while the service renders its own
    isolated registry — so a ``/metrics`` scrape would miss the pool
    unless the engine families are appended here.  ``exclude`` guards
    the double-render when a caller wired the global registry in.
    """
    from repro.obs import get_registry

    registry = get_registry()
    if registry is exclude:
        return ""
    lines = []
    for line in registry.render().splitlines():
        name = line.split(" ", 3)[2] if line.startswith("#") else line
        if name.startswith("repro_engine_"):
            lines.append(line)
    return "\n".join(lines) + "\n" if lines else ""


class LinkPredictionService:
    """Micro-batched online scoring over a model registry.

    Parameters
    ----------
    registry:
        The models and candidate sets to serve.
    max_batch_size / max_wait:
        Micro-batching knobs (see :class:`BatchScheduler`).
    cache_size:
        LRU capacity of the top-k result cache; ``0`` disables caching
        (every request is scored).
    timeout:
        Seconds a request may wait for its batch before failing.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to publish
        into; the service builds its own by default so ``/metrics``
        reflects exactly this service.
    engine_workers / engine_start_method:
        Evaluation fan-out for :meth:`evaluate_model`.  ``engine_workers
        <= 1`` (default) evaluates serially in-process; ``> 1`` lazily
        starts one :class:`~repro.engine.pool.PersistentWorkerPool` owned
        by this service and reuses it for every evaluation request until
        :meth:`close`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = DEFAULT_MAX_BATCH,
        max_wait: float = DEFAULT_MAX_WAIT,
        cache_size: int = DEFAULT_CACHE_SIZE,
        timeout: float = DEFAULT_TIMEOUT,
        metrics: MetricsRegistry | None = None,
        engine_workers: int = 1,
        engine_start_method: str | None = None,
    ):
        self.registry = registry
        self.graph = registry.graph
        self.timeout = timeout
        self.engine_workers = max(1, engine_workers)
        self.engine_start_method = engine_start_method
        self._engine_pool = None
        self._engine_lock = threading.Lock()
        self._evaluations_total = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scheduler = BatchScheduler(
            self._score_batch,
            max_batch_size=max_batch_size,
            max_wait=max_wait,
            metrics=self.metrics,
        )
        self._cache = LRUCache(cache_size)
        self._cache_lock = threading.Lock()
        self._started_at = time.time()
        self._requests_total = self.metrics.counter(
            "repro_serve_requests_total",
            "Requests served, by endpoint",
            labels=("endpoint",),
        )
        self._request_seconds = self.metrics.histogram(
            "repro_serve_request_seconds",
            "End-to-end request latency, by endpoint",
            labels=("endpoint",),
        )
        self._cache_hits = self.metrics.counter(
            "repro_serve_cache_hits_total", "Top-k cache hits"
        )
        self._cache_misses = self.metrics.counter(
            "repro_serve_cache_misses_total", "Top-k cache misses"
        )

    # ------------------------------------------------------------------
    # Request surface
    # ------------------------------------------------------------------
    def rank(
        self,
        model: str,
        anchor: int | str,
        relation: int | str,
        side: Side = "tail",
        k: int = 10,
        filter_known: bool = True,
        candidates: str = "filtered",
    ) -> dict:
        """Top-k completion of ``(anchor, relation, ?)`` (or ``(?, relation,
        anchor)`` for ``side="head"``).

        ``filter_known`` drops entities already linked to the anchor in
        any split — the "recommend *new* links" setting.  Results are
        deterministic: ties break toward the smaller entity id.
        """
        start = time.perf_counter()
        try:
            return self._rank(
                model, anchor, relation, side, k, filter_known, candidates
            )
        finally:
            self._requests_total.inc(endpoint="rank")
            self._request_seconds.observe(
                time.perf_counter() - start, endpoint="rank"
            )

    def _rank(
        self,
        model: str,
        anchor: int | str,
        relation: int | str,
        side: Side,
        k: int,
        filter_known: bool,
        candidates: str,
    ) -> dict:
        anchor_id = self._entity_id(anchor)
        relation_id = self._relation_id(relation)
        self._check_side(side)
        key = (model, anchor_id, relation_id, side, k, filter_known, candidates)
        with self._cache_lock:
            cached = self._cache.get(key)
        if cached is not None:
            # Deep-copied both into and out of the cache: in-process
            # callers may freely mutate their response without poisoning
            # later hits.
            self._cache_hits.inc()
            response = copy.deepcopy(cached)
            response["cached"] = True
            return response
        self._cache_misses.inc()
        query = RankQuery(
            model=model,
            relation=relation_id,
            side=side,
            anchor=anchor_id,
            kind="topk",
            k=k,
            filter_known=filter_known,
            candidates=candidates,
        )
        payload = self.scheduler.submit(query).result(self.timeout)
        entities = self.graph.entities
        response = {
            "model": model,
            "anchor": entities.label_of(anchor_id),
            "anchor_id": anchor_id,
            "relation": self.graph.relations.label_of(relation_id),
            "relation_id": relation_id,
            "side": side,
            "k": k,
            "candidates": candidates,
            "num_candidates": payload["num_candidates"],
            "filter_known": filter_known,
            "results": [
                {
                    "rank": position + 1,
                    "entity": entities.label_of(entity_id),
                    "entity_id": entity_id,
                    "score": score,
                }
                for position, (entity_id, score) in enumerate(payload["topk"])
            ],
            "cached": False,
        }
        with self._cache_lock:
            self._cache.put(key, copy.deepcopy(response))
        return response

    def score(
        self,
        model: str,
        triples,
        sides: tuple[Side, ...] = SIDES,
        candidates: str = "all",
    ) -> list[dict]:
        """Scores and filtered ranks of explicit ``(h, r, t)`` triples.

        With the default ``candidates="all"`` each rank is computed by
        the offline engine's own kernel over the full entity axis, so it
        equals the rank :func:`~repro.core.ranking.evaluate_full` reports
        for the same ``(h, r, t, side)`` query.  ``candidates="filtered"``
        ranks within the model's static candidate set instead (the
        sampled-protocol semantics).

        All queries are submitted before any result is awaited, so one
        call batches into few scoring calls even single-threaded.
        """
        start = time.perf_counter()
        try:
            return self._score(model, triples, sides, candidates)
        finally:
            self._requests_total.inc(endpoint="score")
            self._request_seconds.observe(
                time.perf_counter() - start, endpoint="score"
            )

    def _score(
        self,
        model: str,
        triples,
        sides: tuple[Side, ...],
        candidates: str,
    ) -> list[dict]:
        submitted: list[tuple[dict, object]] = []
        for triple in triples:
            raw_h, raw_r, raw_t = triple
            h = self._entity_id(raw_h)
            t = self._entity_id(raw_t)
            r = self._relation_id(raw_r)
            for side in sides:
                self._check_side(side)
                anchor, truth = (t, h) if side == "head" else (h, t)
                query = RankQuery(
                    model=model,
                    relation=r,
                    side=side,
                    anchor=anchor,
                    kind="rank",
                    truth=truth,
                    candidates=candidates,
                )
                meta = {
                    "head": self.graph.entities.label_of(h),
                    "relation": self.graph.relations.label_of(r),
                    "tail": self.graph.entities.label_of(t),
                    "head_id": h,
                    "relation_id": r,
                    "tail_id": t,
                    "side": side,
                }
                submitted.append((meta, self.scheduler.submit(query)))
        rows: list[dict] = []
        for meta, pending in submitted:
            payload = pending.result(self.timeout)
            rows.append({**meta, "score": payload["score"], "rank": payload["rank"]})
        return rows

    def evaluate_model(self, model: str, split: str = "test") -> dict:
        """``/v1/evaluate``: full filtered ranking of one registered model.

        Runs the offline engine on the serving graph's ``split``.  With
        ``engine_workers > 1`` the run executes on the service's private
        persistent worker pool — the first request pays pool start and
        state publication, repeat requests for the same model reuse both,
        so the shared-memory footprint stays flat across requests.
        """
        start = time.perf_counter()
        try:
            kge = self.registry.model(model)  # KeyError -> 404 upstream
            engine = EvaluationEngine(
                workers=self.engine_workers,
                start_method=self.engine_start_method,
                pool=self._ensure_engine_pool(),
            )
            run = engine.run(kge, self.graph, split=split, keep_ranks=False)
            self._evaluations_total += 1
            return {
                "model": model,
                "split": split,
                "metrics": run.metrics.as_dict(),
                "num_queries": run.num_queries,
                "num_scored": run.num_scored,
                "seconds": round(run.seconds, 6),
                "workers": run.workers,
            }
        finally:
            self._requests_total.inc(endpoint="evaluate")
            self._request_seconds.observe(
                time.perf_counter() - start, endpoint="evaluate"
            )

    def _ensure_engine_pool(self):
        """The service-owned persistent pool (lazily started, auto-healed)."""
        if self.engine_workers <= 1:
            return None
        with self._engine_lock:
            pool = self._engine_pool
            if pool is not None and not pool.alive():
                pool.shutdown(force=True)
                pool = None
            if pool is None:
                pool = PersistentWorkerPool(
                    self.engine_workers, start_method=self.engine_start_method
                )
                self._engine_pool = pool
            return pool

    def engine_pool_stats(self) -> dict:
        """Lifecycle counters of the service-owned evaluation pool."""
        with self._engine_lock:
            pool = self._engine_pool
            if pool is None:
                return {
                    "workers": self.engine_workers,
                    "started": False,
                    "evaluations": self._evaluations_total,
                }
            return {
                "workers": pool.workers,
                "started": True,
                "alive": pool.alive(),
                "start_method": pool.start_method,
                "runs_completed": pool.runs_completed,
                "states_published": pool.states_published,
                "evaluations": self._evaluations_total,
            }

    def models(self) -> list[dict]:
        """``/v1/models``: every registered model with its metadata."""
        return self.registry.rows()

    def health(self) -> dict:
        """``/healthz``: liveness plus scheduler / cache counters."""
        with self._cache_lock:
            cache = {
                "capacity": self._cache.capacity,
                "entries": len(self._cache),
                "hits": self._cache.hits,
                "misses": self._cache.misses,
            }
        return {
            "status": "ok",
            "graph": self.graph.name,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "models": self.registry.names(),
            "scheduler": self.scheduler.stats(),
            "cache": cache,
            "engine_pool": self.engine_pool_stats(),
        }

    def metrics_text(self) -> str:
        """``/metrics``: Prometheus text exposition of this service.

        Derived gauges (uptime, cache hit rate, mean batch size, cache
        occupancy) are refreshed at render time; counters and histograms
        accumulate live on the request path.
        """
        self.metrics.gauge(
            "repro_serve_uptime_seconds", "Seconds since the service started"
        ).set(round(time.time() - self._started_at, 3))
        with self._cache_lock:
            hits, misses = self._cache.hits, self._cache.misses
            entries = len(self._cache)
        lookups = hits + misses
        self.metrics.gauge(
            "repro_serve_cache_hit_rate", "Top-k cache hit rate over all lookups"
        ).set(hits / lookups if lookups else 0.0)
        self.metrics.gauge(
            "repro_serve_cache_entries", "Top-k cache occupancy"
        ).set(entries)
        self.metrics.gauge(
            "repro_serve_mean_batch_size", "Mean requests per scoring call"
        ).set(round(self.scheduler.mean_batch_size, 4))
        text = self.metrics.render()
        engine = _engine_metrics_text(exclude=self.metrics)
        return text + engine if engine else text

    def close(self) -> None:
        """Flush in-flight batches, stop the scheduler and the engine pool."""
        self.scheduler.close()
        with self._engine_lock:
            pool, self._engine_pool = self._engine_pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "LinkPredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Id resolution
    # ------------------------------------------------------------------
    def _entity_id(self, entity: int | str) -> int:
        if isinstance(entity, str):
            entity_id = self.graph.entities.get(entity)
            if entity_id is None:
                raise KeyError(f"unknown entity {entity!r}")
            return entity_id
        entity_id = int(entity)
        if not 0 <= entity_id < self.graph.num_entities:
            raise KeyError(
                f"entity id {entity_id} outside [0, {self.graph.num_entities})"
            )
        return entity_id

    def _relation_id(self, relation: int | str) -> int:
        if isinstance(relation, str):
            relation_id = self.graph.relations.get(relation)
            if relation_id is None:
                raise KeyError(f"unknown relation {relation!r}")
            return relation_id
        relation_id = int(relation)
        if not 0 <= relation_id < self.graph.num_relations:
            raise KeyError(
                f"relation id {relation_id} outside [0, {self.graph.num_relations})"
            )
        return relation_id

    @staticmethod
    def _check_side(side: str) -> None:
        if side not in SIDES:
            raise ValueError(f"side must be 'head' or 'tail', got {side!r}")

    # ------------------------------------------------------------------
    # The batched scoring kernel (runs on the scheduler thread)
    # ------------------------------------------------------------------
    def _score_batch(self, key: BatchKey, queries: list[RankQuery]) -> list[dict]:
        """Score one micro-batch with a single vectorized model call."""
        name, relation, side, mode = key
        model = self.registry.model(name)
        pool: np.ndarray | None = None
        if mode == "filtered":
            sets = self.registry.candidates(name)
            selected = sets.candidates(relation, side)
            # An empty column means the recommender admitted nothing for
            # this (relation, side); fall back to the full vocabulary
            # rather than serving an unanswerable query.
            pool = selected if selected.size else None
        anchors = np.asarray([query.anchor for query in queries], dtype=np.int64)
        scores = model.score_candidates_batch(anchors, relation, side, pool)
        results: list[dict | None] = [None] * len(queries)
        self._resolve_ranks(queries, results, scores, anchors, relation, side, model, pool)
        self._resolve_topk(queries, results, scores, relation, side, pool)
        return results  # type: ignore[return-value] — every slot is filled

    def _resolve_ranks(
        self, queries, results, scores, anchors, relation, side, model, pool
    ) -> None:
        """Filtered ranks for the batch's ``kind="rank"`` rows, vectorized.

        This is line-for-line the offline engine's kernel
        (:func:`repro.engine.worker.score_chunk`): same score call, same
        known-answer collection, same rank correction — which is what
        makes served ranks bitwise-equal to ``evaluate_full``'s.
        """
        rows = [i for i, query in enumerate(queries) if query.kind == "rank"]
        if not rows:
            return
        sub = scores[rows]
        truths = np.asarray([queries[i].truth for i in rows], dtype=np.int64)
        if pool is None:
            true_scores = sub[np.arange(len(rows)), truths]
        else:
            true_scores = np.diagonal(
                model.score_candidates_batch(anchors[rows], relation, side, truths)
            )
        chunk_queries = [
            (queries[i].anchor, int(truth), 0, 0) for i, truth in zip(rows, truths)
        ]
        knowns = collect_known_answers(self.graph, chunk_queries, relation, side)
        ranks = chunk_filtered_ranks(sub, true_scores, knowns, pool=pool)
        for j, i in enumerate(rows):
            results[i] = {
                "score": float(true_scores[j]),
                "rank": float(ranks[j]),
                "num_candidates": int(scores.shape[1]),
            }

    def _resolve_topk(self, queries, results, scores, relation, side, pool) -> None:
        """Top-k selection for the batch's ``kind="topk"`` rows.

        Ordering is ``(-score, entity id)`` — fully deterministic under
        ties — with known answers and the anchor itself removed when the
        query asks for filtering (a self-loop is never a *new* link).
        """
        entity_ids = pool if pool is not None else np.arange(scores.shape[1])
        for i, query in enumerate(queries):
            if query.kind != "topk":
                continue
            row = scores[i].astype(np.float64, copy=True)
            if query.filter_known:
                known = self.graph.true_answers(query.anchor, relation, side)
                exclude = np.unique(np.append(known, query.anchor))
                if pool is None:
                    row[exclude] = -np.inf
                else:
                    positions = np.searchsorted(pool, exclude)
                    np.minimum(positions, pool.size - 1, out=positions)
                    inside = pool[positions] == exclude
                    row[positions[inside]] = -np.inf
            order = np.lexsort((entity_ids, -row))
            top: list[tuple[int, float]] = []
            for position in order[: query.k]:
                if not np.isfinite(row[position]):
                    break  # only excluded entities remain
                top.append((int(entity_ids[position]), float(row[position])))
            results[i] = {"topk": top, "num_candidates": int(scores.shape[1])}

    def __repr__(self) -> str:
        return (
            f"LinkPredictionService({self.registry!r}, "
            f"scheduler={self.scheduler!r})"
        )
