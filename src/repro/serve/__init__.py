"""Online link-prediction serving (`repro.serve`).

The offline pipeline ends with a trained checkpoint (``repro.models.io``)
and per-(relation, side) candidate sets (``repro.core.candidates``); this
package turns those artifacts into a low-latency scoring service:

* :class:`ModelRegistry` — named ``.npz`` checkpoints under an
  :class:`~repro.store.ExperimentStore` root, with lazily built (and
  store-cached) static candidate sets per recommender;
* :class:`BatchScheduler` — coalesces concurrent requests into
  micro-batches per ``(model, relation, side)`` so each batch costs one
  vectorized :meth:`~repro.models.base.KGEModel.score_candidates_batch`
  call;
* :class:`LinkPredictionService` — the request surface (``rank`` top-k
  with candidate filtering, ``score`` with offline-identical filtered
  ranks, ``models``, ``health``) fronted by an LRU result cache;
* :class:`ServeHTTPServer` / :func:`run_server` — a stdlib
  ``ThreadingHTTPServer`` JSON API (``/v1/rank``, ``/v1/score``,
  ``/v1/models``, ``/healthz``);
* :class:`ServeClient` — one client surface over both the in-process
  service and the HTTP API.

The CLI front end is ``repro serve``; the load test asserting the
micro-batching speed-up and rank exactness is
``benchmarks/bench_serve.py``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.http import ServeHTTPServer, run_server
from repro.serve.registry import ModelRegistry, ServingEntry
from repro.serve.scheduler import BatchScheduler, PendingResult, RankQuery
from repro.serve.service import LinkPredictionService

__all__ = [
    "BatchScheduler",
    "LinkPredictionService",
    "ModelRegistry",
    "PendingResult",
    "RankQuery",
    "ServeClient",
    "ServeError",
    "ServeHTTPServer",
    "ServingEntry",
    "run_server",
]
