"""One client surface over the in-process service and the HTTP API.

``ServeClient(service=...)`` calls the service directly (tests, notebooks,
the load benchmark); ``ServeClient(base_url=...)`` speaks the JSON API
over stdlib ``urllib``.  Both modes return the same payload dicts, so
code written against one works against the other unchanged.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.serve.service import LinkPredictionService


class ServeError(RuntimeError):
    """A serving request the server rejected (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Client for a :class:`LinkPredictionService`, local or remote.

    Exactly one of ``service`` / ``base_url`` must be given.
    """

    def __init__(
        self,
        service: LinkPredictionService | None = None,
        base_url: str | None = None,
        timeout: float = 30.0,
    ):
        if (service is None) == (base_url is None):
            raise ValueError("pass exactly one of service= or base_url=")
        self.service = service
        self.base_url = base_url.rstrip("/") if base_url else None
        self.timeout = timeout

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _http(self, method: str, path: str, body: dict | None = None):
        assert self.base_url is not None
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = error.reason
            raise ServeError(message or str(error), status=error.code) from None

    # ------------------------------------------------------------------
    # The API surface
    # ------------------------------------------------------------------
    def rank(
        self,
        model: str,
        anchor,
        relation,
        side: str = "tail",
        k: int = 10,
        filter_known: bool = True,
        candidates: str = "filtered",
    ) -> dict:
        """Top-k completion (see :meth:`LinkPredictionService.rank`)."""
        if self.service is not None:
            return self.service.rank(
                model, anchor, relation, side=side, k=k,
                filter_known=filter_known, candidates=candidates,
            )
        return self._http(
            "POST",
            "/v1/rank",
            {
                "model": model,
                "anchor": anchor,
                "relation": relation,
                "side": side,
                "k": k,
                "filter_known": filter_known,
                "candidates": candidates,
            },
        )

    def score(
        self,
        model: str,
        triples,
        sides: tuple[str, ...] = ("head", "tail"),
        candidates: str = "all",
    ) -> list[dict]:
        """Triple scores + filtered ranks (see :meth:`LinkPredictionService.score`)."""
        if self.service is not None:
            return self.service.score(
                model, triples, sides=tuple(sides), candidates=candidates
            )
        payload = self._http(
            "POST",
            "/v1/score",
            {
                "model": model,
                "triples": [list(triple) for triple in triples],
                "sides": list(sides),
                "candidates": candidates,
            },
        )
        return payload["results"]

    def evaluate(self, model: str, split: str = "test") -> dict:
        """Full offline evaluation of a served model
        (see :meth:`LinkPredictionService.evaluate_model`)."""
        if self.service is not None:
            return self.service.evaluate_model(model, split=split)
        return self._http("POST", "/v1/evaluate", {"model": model, "split": split})

    def models(self) -> list[dict]:
        if self.service is not None:
            return self.service.models()
        return self._http("GET", "/v1/models")["models"]

    def health(self) -> dict:
        if self.service is not None:
            return self.service.health()
        return self._http("GET", "/healthz")

    def __repr__(self) -> str:
        target = self.base_url if self.base_url else "in-process"
        return f"ServeClient({target!r})"
