"""Named scaled-down analogues of the paper's benchmark datasets.

Each entry mirrors the *relative* shape of one paper dataset (entity /
relation / type ratios, triple density, type-community modularity) at a
size that runs on a laptop CPU in seconds.  Absolute sizes are roughly
1/10 to 1/200 of the originals; the evaluation-framework phenomena
(easy-negative mass, estimator bias, speed-ups) depend on those ratios
rather than on absolute scale.

The ``num_communities`` knob is tuned per dataset to land near the paper's
Table 2 easy-negative percentages: FB15k-237 has highly modular typed
structure (58% easy negatives), YAGO3-10 is in between (43%), and
ogbl-wikikg2's enormous hub entities keep its easy mass small (5%).

==================  ========================  =======================
zoo name            models paper dataset       shape rationale
==================  ========================  =======================
``codex-s-lite``    CoDEx-S                   tiny, few relations
``codex-m-lite``    CoDEx-M                   small-medium
``codex-l-lite``    CoDEx-L                   medium, sparser
``fb15k-lite``      FB15k                     many relations, dense
``fb15k237-lite``   FB15k-237                 medium relation count
``yago310-lite``    YAGO3-10                  few relations, many entities
``wikikg2-lite``    ogbl-wikikg2              the scale testbed
``wikikg2-xl``      ogbl-wikikg2 (3x)         headline speed-up testbed
==================  ========================  =======================
"""

from __future__ import annotations

import dataclasses

from repro.datasets.synthetic import SyntheticConfig, SyntheticDataset, generate

ZOO: dict[str, SyntheticConfig] = {
    "codex-s-lite": SyntheticConfig(
        name="codex-s-lite",
        num_entities=400,
        num_relations=14,
        num_types=8,
        num_triples=4000,
        num_communities=3,
        noise_triples=6,
        seed=101,
    ),
    "codex-m-lite": SyntheticConfig(
        name="codex-m-lite",
        num_entities=1200,
        num_relations=20,
        num_types=12,
        num_triples=11000,
        num_communities=4,
        noise_triples=10,
        seed=102,
    ),
    "codex-l-lite": SyntheticConfig(
        name="codex-l-lite",
        num_entities=2500,
        num_relations=26,
        num_types=16,
        num_triples=18000,
        num_communities=4,
        noise_triples=14,
        seed=103,
    ),
    "fb15k-lite": SyntheticConfig(
        name="fb15k-lite",
        num_entities=1500,
        num_relations=90,
        num_types=14,
        num_triples=20000,
        num_communities=6,
        noise_triples=16,
        seed=104,
    ),
    "fb15k237-lite": SyntheticConfig(
        name="fb15k237-lite",
        num_entities=1500,
        num_relations=40,
        num_types=14,
        num_triples=16000,
        num_communities=6,
        noise_triples=12,
        seed=105,
    ),
    "yago310-lite": SyntheticConfig(
        name="yago310-lite",
        num_entities=4000,
        num_relations=12,
        num_types=20,
        num_triples=24000,
        entity_zipf=1.0,
        num_communities=4,
        noise_triples=8,
        seed=106,
    ),
    "wikikg2-lite": SyntheticConfig(
        name="wikikg2-lite",
        num_entities=10000,
        num_relations=60,
        num_types=40,
        num_triples=60000,
        entity_zipf=1.0,
        num_communities=2,
        cross_community_fraction=0.4,
        noise_triples=36,
        seed=107,
    ),
    # The scale testbed for the headline speed-up experiment (Figure 3a /
    # Table 9's ogbl-wikikg2 column).  Three times wikikg2-lite on every
    # axis, with a slim test split so the full evaluation stays heavy but
    # finite on a laptop.
    "wikikg2-xl": SyntheticConfig(
        name="wikikg2-xl",
        num_entities=30000,
        num_relations=80,
        num_types=60,
        num_triples=120000,
        entity_zipf=1.0,
        num_communities=2,
        cross_community_fraction=0.4,
        noise_triples=50,
        valid_fraction=0.02,
        test_fraction=0.02,
        seed=108,
    ),
}

_CACHE: dict[object, SyntheticDataset] = {}


def available_datasets() -> list[str]:
    """Names of all zoo datasets."""
    return sorted(ZOO)


def resolve_config(name: str, overrides: dict | None = None) -> SyntheticConfig:
    """The generator config behind a zoo name, with optional overrides.

    ``overrides`` replaces fields of the base :class:`SyntheticConfig`
    (e.g. ``{"num_entities": 2000}`` for a scaling variant).  Unknown
    field names are rejected by listing the valid ones; the ``name``
    field cannot be overridden because it identifies the base entry.
    """
    if name not in ZOO:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    config = ZOO[name]
    if not overrides:
        return config
    valid = {field.name for field in dataclasses.fields(SyntheticConfig)} - {"name"}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise KeyError(
            f"unknown dataset override(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(sorted(valid))}"
        )
    # The variant gets a derived name so journals, labels and printed
    # tables distinguish it from the unmodified entry (the store would
    # anyway: fingerprints cover the triple content).
    variant = ",".join(f"{key}={overrides[key]}" for key in sorted(overrides))
    return dataclasses.replace(config, name=f"{name}[{variant}]", **overrides)


def load(
    name: str, use_cache: bool = True, overrides: dict | None = None
) -> SyntheticDataset:
    """Generate (or fetch from the process cache) a zoo dataset by name.

    ``overrides`` produces a modified variant of the named entry (see
    :func:`resolve_config`); variants are cached independently of the
    unmodified dataset.
    """
    config = resolve_config(name, overrides)
    cache_token: object = (
        name if not overrides else (name, tuple(sorted(overrides.items())))
    )
    if use_cache and cache_token in _CACHE:
        return _CACHE[cache_token]
    dataset = generate(config)
    if use_cache:
        _CACHE[cache_token] = dataset
    return dataset


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests)."""
    _CACHE.clear()
