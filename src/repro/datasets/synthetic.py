"""Typed synthetic knowledge-graph generator.

This is the data substrate standing in for the paper's public benchmarks
(FB15k-237, CoDEx, YAGO3-10, ogbl-wikikg2), which cannot be downloaded in
this offline environment.  The generator reproduces the structural features
the paper's analysis depends on:

* entities carry one or more *types* drawn from a skewed distribution, with
  a few huge types (Person, Location) and a long tail of small ones;
* every relation has a *type signature* (domain & range types) and a
  *cardinality class*; triples respect both;
* entity popularity within a type is Zipfian, so a handful of hub entities
  (the "France" effect, paper Section 4.1) participate in many relations
  while most entities participate in few;
* splits are transductive (train covers every entity and relation).

Because relations only connect type-compatible entities, a uniformly random
negative is usually type-incompatible — the *easy negative* mass that makes
random sampled evaluation optimistic, which is precisely the phenomenon the
framework corrects for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.schema import Cardinality, RelationSchema
from repro.kg.graph import KnowledgeGraph
from repro.kg.split import SplitFractions, split_graph
from repro.kg.typing import TypeStore
from repro.kg.vocabulary import Vocabulary

_CARDINALITY_CYCLE = (
    Cardinality.MANY_TO_MANY,
    Cardinality.MANY_TO_ONE,
    Cardinality.ONE_TO_MANY,
    Cardinality.MANY_TO_MANY,
    Cardinality.ONE_TO_ONE,
)


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic generator.

    Parameters
    ----------
    num_entities, num_relations, num_types:
        Vocabulary sizes.
    num_triples:
        Target number of *distinct* triples before splitting (the generator
        may fall slightly short when cardinality constraints saturate).
    type_zipf, entity_zipf:
        Skew exponents; larger means more mass on the first types/entities.
    multi_type_fraction:
        Fraction of entities carrying a second type.
    signature_width:
        Maximum number of types in a relation's domain or range.
    relation_zipf:
        Skew of relation frequencies.
    num_communities:
        Thematic clusters of types (people/film vs. biology vs. geography
        in Wikidata terms).  Relations connect types *within* one
        community, which creates the block structure responsible for the
        paper's large easy-negative mass: an entity from one community has
        zero recommender score for another community's relations.  ``1``
        disables the structure.
    cross_community_fraction:
        Probability a relation's range is drawn from a different community
        than its domain (bridging relations like ``bornIn``).
    noise_triples:
        Number of signature-violating triples injected uniformly at random
        — the semantically broken statements real KGs contain (paper Table
        10's ``(MonthOfAugust, gender, male)``).  The ones landing in the
        test split become genuine *false easy negatives* for the audit.
    valid_fraction, test_fraction:
        Split sizes.
    seed:
        Generator seed (the dataset is fully determined by the config).
    name:
        Dataset name.
    """

    num_entities: int = 1000
    num_relations: int = 20
    num_types: int = 10
    num_triples: int = 8000
    type_zipf: float = 1.1
    entity_zipf: float = 0.9
    multi_type_fraction: float = 0.15
    signature_width: int = 2
    relation_zipf: float = 0.8
    num_communities: int = 1
    cross_community_fraction: float = 0.1
    noise_triples: int = 0
    valid_fraction: float = 0.05
    test_fraction: float = 0.05
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_types < 2:
            raise ValueError("need at least 2 types for non-trivial signatures")
        if self.num_entities < self.num_types:
            raise ValueError("need at least one entity per type")
        if not 1 <= self.num_communities <= self.num_types:
            raise ValueError(
                f"num_communities must be in [1, num_types], got {self.num_communities}"
            )
        if not 0.0 <= self.cross_community_fraction <= 1.0:
            raise ValueError("cross_community_fraction must be in [0, 1]")
        if self.noise_triples < 0:
            raise ValueError("noise_triples must be non-negative")

    def community_of_type(self, type_id: int) -> int:
        """Community of a type (round-robin, so each community mixes sizes)."""
        return type_id % self.num_communities


@dataclass
class SyntheticDataset:
    """A generated dataset: graph + ground-truth types + schemas."""

    graph: KnowledgeGraph
    types: TypeStore
    schemas: list[RelationSchema]
    config: SyntheticConfig = field(repr=False, default_factory=SyntheticConfig)


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _assign_types(config: SyntheticConfig, rng: np.random.Generator) -> dict[int, tuple[int, ...]]:
    """Give every entity a primary type (skewed) and maybe a secondary one.

    Secondary types stay within the primary type's community, preserving
    the block structure that makes cross-community negatives *easy*.
    """
    type_weights = _zipf_weights(config.num_types, config.type_zipf)
    primary = rng.choice(config.num_types, size=config.num_entities, p=type_weights)
    # Guarantee every type has at least one member so signatures are satisfiable.
    for type_id in range(config.num_types):
        if not (primary == type_id).any():
            primary[int(rng.integers(config.num_entities))] = type_id
    community_members: dict[int, list[int]] = {}
    for type_id in range(config.num_types):
        community_members.setdefault(config.community_of_type(type_id), []).append(type_id)
    assignments: dict[int, tuple[int, ...]] = {}
    for entity in range(config.num_entities):
        first = int(primary[entity])
        types = [first]
        if rng.random() < config.multi_type_fraction:
            peers = community_members[config.community_of_type(first)]
            peer_weights = type_weights[peers]
            extra = int(rng.choice(peers, p=peer_weights / peer_weights.sum()))
            if extra not in types:
                types.append(extra)
        assignments[entity] = tuple(types)
    return assignments


def _build_schemas(config: SyntheticConfig, rng: np.random.Generator) -> list[RelationSchema]:
    relation_weights = _zipf_weights(config.num_relations, config.relation_zipf)
    type_weights = _zipf_weights(config.num_types, config.type_zipf)
    community_members: dict[int, list[int]] = {}
    for type_id in range(config.num_types):
        community_members.setdefault(config.community_of_type(type_id), []).append(type_id)
    num_communities = len(community_members)

    def draw_types(community: int, width: int) -> tuple[int, ...]:
        peers = community_members[community]
        weights = type_weights[peers]
        picked = rng.choice(peers, size=width, p=weights / weights.sum())
        return tuple(sorted(set(int(t) for t in picked)))

    schemas: list[RelationSchema] = []
    for rel in range(config.num_relations):
        width_d = int(rng.integers(1, config.signature_width + 1))
        width_r = int(rng.integers(1, config.signature_width + 1))
        domain_community = rel % num_communities
        range_community = domain_community
        if num_communities > 1 and rng.random() < config.cross_community_fraction:
            range_community = int(rng.integers(num_communities - 1))
            if range_community >= domain_community:
                range_community += 1
        schemas.append(
            RelationSchema(
                name=f"r{rel}",
                domain_types=draw_types(domain_community, width_d),
                range_types=draw_types(range_community, width_r),
                cardinality=_CARDINALITY_CYCLE[rel % len(_CARDINALITY_CYCLE)],
                weight=float(relation_weights[rel]),
            )
        )
    return schemas


def _members_by_type(
    assignments: dict[int, tuple[int, ...]], num_types: int
) -> list[np.ndarray]:
    members: list[list[int]] = [[] for _ in range(num_types)]
    for entity, types in assignments.items():
        for type_id in types:
            members[type_id].append(entity)
    return [np.asarray(sorted(group), dtype=np.int64) for group in members]


def _candidate_pool(
    schema_types: tuple[int, ...],
    members: list[np.ndarray],
    entity_zipf: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Entities admissible for one side of a relation, with Zipf weights."""
    pool = np.unique(np.concatenate([members[t] for t in schema_types]))
    weights = _zipf_weights(len(pool), entity_zipf)
    return pool, weights


def generate(config: SyntheticConfig) -> SyntheticDataset:
    """Generate a full synthetic dataset from ``config``.

    The generation is deterministic in the config (including ``seed``).
    """
    rng = np.random.default_rng(config.seed)
    assignments = _assign_types(config, rng)
    schemas = _build_schemas(config, rng)
    members = _members_by_type(assignments, config.num_types)

    relation_weights = np.asarray([s.weight for s in schemas])
    relation_weights = relation_weights / relation_weights.sum()
    triples_per_relation = np.maximum(
        1, np.round(relation_weights * config.num_triples).astype(np.int64)
    )

    triples: set[tuple[int, int, int]] = set()
    used_heads: dict[int, set[int]] = {r: set() for r in range(config.num_relations)}
    used_tails: dict[int, set[int]] = {r: set() for r in range(config.num_relations)}

    for rel, schema in enumerate(schemas):
        head_pool, head_weights = _candidate_pool(schema.domain_types, members, config.entity_zipf)
        tail_pool, tail_weights = _candidate_pool(schema.range_types, members, config.entity_zipf)
        target = int(triples_per_relation[rel])
        produced = 0
        rounds = 0
        # Draw candidate pairs in vectorized batches; reject violations of
        # cardinality / self-loop / duplicate constraints sequentially.
        while produced < target and rounds < 8:
            rounds += 1
            batch = max(64, 2 * (target - produced))
            heads = rng.choice(head_pool, size=batch, p=head_weights)
            tails = rng.choice(tail_pool, size=batch, p=tail_weights)
            for head, tail in zip(heads.tolist(), tails.tolist()):
                if produced >= target:
                    break
                if head == tail:
                    continue
                if not schema.cardinality.head_repeats and head in used_heads[rel]:
                    continue
                if not schema.cardinality.tail_repeats and tail in used_tails[rel]:
                    continue
                triple = (head, rel, tail)
                if triple in triples:
                    continue
                triples.add(triple)
                used_heads[rel].add(head)
                used_tails[rel].add(tail)
                produced += 1

    # Inject signature-violating noise triples (real-KG curation errors).
    attempts = 0
    noise_added = 0
    while noise_added < config.noise_triples and attempts < 20 * max(config.noise_triples, 1):
        attempts += 1
        head = int(rng.integers(config.num_entities))
        tail = int(rng.integers(config.num_entities))
        rel = int(rng.integers(config.num_relations))
        if head == tail:
            continue
        schema = schemas[rel]
        if schema.admits(assignments[head], assignments[tail]):
            continue  # accidentally valid — not noise
        triple = (head, rel, tail)
        if triple in triples:
            continue
        triples.add(triple)
        noise_added += 1

    triple_array = np.asarray(sorted(triples), dtype=np.int64)
    # Drop entities that ended up isolated so |E| reflects actual usage,
    # remapping ids to stay contiguous.
    used_entities = np.unique(triple_array[:, [0, 2]])
    remap = -np.ones(config.num_entities, dtype=np.int64)
    remap[used_entities] = np.arange(len(used_entities))
    triple_array[:, 0] = remap[triple_array[:, 0]]
    triple_array[:, 2] = remap[triple_array[:, 2]]

    entities = Vocabulary(f"e{int(old)}" for old in used_entities)
    relations = Vocabulary(schema.name for schema in schemas)
    type_vocab = Vocabulary(f"T{t}" for t in range(config.num_types))
    kept_assignments = {
        int(remap[old]): assignments[int(old)] for old in used_entities
    }

    graph = split_graph(
        entities=entities,
        relations=relations,
        triples=triple_array,
        fractions=SplitFractions(valid=config.valid_fraction, test=config.test_fraction),
        rng=rng,
        name=config.name,
    )
    store = TypeStore(types=type_vocab, assignments=kept_assignments)
    return SyntheticDataset(graph=graph, types=store, schemas=schemas, config=config)
