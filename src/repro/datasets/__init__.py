"""Synthetic dataset substrate: typed KG generator + named dataset zoo."""

from repro.datasets.schema import Cardinality, RelationSchema
from repro.datasets.synthetic import SyntheticConfig, SyntheticDataset, generate
from repro.datasets.zoo import ZOO, available_datasets, clear_cache, load

__all__ = [
    "ZOO",
    "Cardinality",
    "RelationSchema",
    "SyntheticConfig",
    "SyntheticDataset",
    "available_datasets",
    "clear_cache",
    "generate",
    "load",
]
