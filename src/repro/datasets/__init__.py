"""Synthetic dataset substrate: typed KG generator + named dataset zoo."""

from repro.datasets.ingest import (
    IngestError,
    IngestResult,
    ingest_directory,
    ingest_files,
    iter_triples,
)
from repro.datasets.scale import SyntheticScaleConfig, generate_scale_tsv
from repro.datasets.schema import Cardinality, RelationSchema
from repro.datasets.synthetic import SyntheticConfig, SyntheticDataset, generate
from repro.datasets.zoo import ZOO, available_datasets, clear_cache, load

__all__ = [
    "ZOO",
    "Cardinality",
    "IngestError",
    "IngestResult",
    "RelationSchema",
    "SyntheticConfig",
    "SyntheticDataset",
    "SyntheticScaleConfig",
    "available_datasets",
    "clear_cache",
    "generate",
    "generate_scale_tsv",
    "ingest_directory",
    "ingest_files",
    "iter_triples",
    "load",
]
