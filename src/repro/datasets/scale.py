"""Streaming synthetic graph generator for out-of-core benchmarks.

Writes million-entity-scale TSV split files **without ever holding the
graph in memory**: triples are drawn and formatted in fixed-size batches,
so peak memory is one batch regardless of the requested size.  The output
feeds :func:`repro.datasets.ingest.ingest_directory`, which is how the
out-of-core benchmark (:mod:`repro.bench.out_of_core`) and the CI
``oom-smoke`` job obtain a ~1M-entity compact store.

The generated graph is shaped to be honest about scale:

* every entity appears at least once in train (the first ``num_entities``
  train tails enumerate the vocabulary), so the ingested vocabulary has
  exactly ``num_entities`` entities and valid/test never reference unseen
  labels;
* heads follow a power-law-ish skew (``floor(E * u**3)``), so filter-index
  keys have the uneven fan-out of real graphs rather than a uniform one;
* relations are uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Triples formatted per write batch — bounds generator memory.
_BATCH_ROWS = 200_000


@dataclass(frozen=True)
class SyntheticScaleConfig:
    """Size knobs of one streamed synthetic graph."""

    num_entities: int = 1_000_000
    num_relations: int = 50
    num_train: int = 1_500_000
    num_valid: int = 5_000
    num_test: int = 5_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entities <= 0 or self.num_relations <= 0:
            raise ValueError("need at least one entity and one relation")
        if self.num_train < self.num_entities:
            raise ValueError(
                f"num_train ({self.num_train}) must be >= num_entities "
                f"({self.num_entities}) so every entity is seen in train"
            )


def _skewed_entities(rng: np.random.Generator, n: int, num_entities: int) -> np.ndarray:
    u = rng.random(n)
    return np.minimum((u * u * u * num_entities).astype(np.int64), num_entities - 1)


def _write_batches(
    path: Path,
    config: SyntheticScaleConfig,
    rng: np.random.Generator,
    n: int,
    cover: bool,
) -> None:
    covered = 0
    with path.open("w", encoding="utf-8") as handle:
        for start in range(0, n, _BATCH_ROWS):
            rows = min(_BATCH_ROWS, n - start)
            heads = _skewed_entities(rng, rows, config.num_entities)
            relations = rng.integers(0, config.num_relations, rows)
            if cover and covered < config.num_entities:
                span = min(rows, config.num_entities - covered)
                tails = np.empty(rows, dtype=np.int64)
                tails[:span] = np.arange(covered, covered + span)
                tails[span:] = _skewed_entities(
                    rng, rows - span, config.num_entities
                )
                covered += span
            else:
                tails = _skewed_entities(rng, rows, config.num_entities)
            handle.write(
                "\n".join(
                    f"e{h}\tr{r}\te{t}"
                    for h, r, t in zip(heads, relations, tails)
                )
            )
            handle.write("\n")


def generate_scale_tsv(
    directory: str | Path,
    config: SyntheticScaleConfig | None = None,
    **overrides,
) -> dict[str, Path]:
    """Write ``train.tsv`` / ``valid.tsv`` / ``test.tsv`` under ``directory``.

    Returns the split → path mapping.  ``overrides`` are
    :class:`SyntheticScaleConfig` fields (``num_entities=...`` etc.).
    """
    if config is None:
        config = SyntheticScaleConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or field overrides, not both")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(config.seed)
    paths: dict[str, Path] = {}
    for split, n, cover in (
        ("train", config.num_train, True),
        ("valid", config.num_valid, False),
        ("test", config.num_test, False),
    ):
        path = directory / f"{split}.tsv"
        _write_batches(path, config, rng, n, cover)
        paths[split] = path
    return paths
