"""Streaming TSV / N-Triples ingestion into the compact triple store.

The ETL pass reads each split file line by line — the raw file is never
materialised — assigning vocabulary ids as labels are first encountered
(train, then valid, then test, each file top to bottom).  That is exactly
the id-assignment order of :func:`repro.kg.graph.build_graph`, so a graph
ingested from files and a graph built from the same triples in memory are
id-for-id identical.

Parsed triples are buffered as fixed-size int32 chunks (12 bytes per
triple), deduplicated per split in encounter order, and written straight
into a :mod:`repro.kg.triples` compact store directory — peak memory is
the vocabulary plus one split's id array, flat in the raw file size.

Formats:

* **TSV** — three tab-separated labels per line.  Blank lines are
  skipped, ``\r\n`` line endings are accepted, anything that does not
  split into exactly three fields raises :class:`IngestError` with the
  offending ``path:line``.
* **N-Triples** — ``<iri>`` or ``_:bnode`` subjects/objects, ``<iri>``
  predicates, a terminating ``.``.  ``#`` comment lines and blank lines
  are skipped.  IRIs are stored without their angle brackets.

Files ending in ``.gz`` are decompressed on the fly.
"""

from __future__ import annotations

import gzip
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.kg.graph import INT32_LIMIT
from repro.kg.triples import (
    COMPACT_FORMAT,
    COMPACT_VERSION,
    SPLITS,
    unique_rows_in_order,
)

#: Counter tracking triples written to compact stores, labelled by split
#: (documented in docs/observability.md).
INGEST_TRIPLES_COUNTER = "repro_ingest_triples_total"

#: Triples buffered per in-memory chunk during streaming ingestion.
_CHUNK_ROWS = 262_144

#: File stems recognised per split by :func:`discover_split_files`.
_SPLIT_SUFFIXES = (".tsv", ".txt", ".nt")

_NT_LINE = re.compile(
    r"^\s*(<[^<>\s]*>|_:\S+)"  # subject: IRI or blank node
    r"\s+(<[^<>\s]*>)"  # predicate: IRI
    r"\s+(<[^<>\s]*>|_:\S+)"  # object: IRI or blank node
    r"\s*\.\s*$"
)


class IngestError(ValueError):
    """A malformed input line or an unusable input layout."""


def _ingest_counter():
    from repro.obs import get_registry

    return get_registry().counter(
        INGEST_TRIPLES_COUNTER,
        "Triples written to compact stores by streaming ingestion",
        labels=("split",),
    )


def _open_text(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def _strip_iri(token: str) -> str:
    return token[1:-1] if token.startswith("<") and token.endswith(">") else token


def resolve_format(path: str | Path, fmt: str = "auto") -> str:
    """Resolve ``"auto"`` to ``"tsv"`` or ``"nt"`` from the file name."""
    if fmt not in ("auto", "tsv", "nt"):
        raise IngestError(f"unknown ingest format {fmt!r}; expected auto, tsv or nt")
    if fmt != "auto":
        return fmt
    name = Path(path).name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return "nt" if name.endswith(".nt") else "tsv"


def iter_triples(path: str | Path, fmt: str = "auto") -> Iterator[tuple[str, str, str]]:
    """Stream ``(head, relation, tail)`` label triples from one file."""
    path = Path(path)
    resolved = resolve_format(path, fmt)
    with _open_text(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.rstrip("\r\n")
            if not line.strip():
                continue
            if resolved == "nt":
                if line.lstrip().startswith("#"):
                    continue
                match = _NT_LINE.match(line)
                if match is None:
                    raise IngestError(
                        f"{path}:{lineno}: not a valid N-Triples statement: "
                        f"{line[:120]!r}"
                    )
                yield (
                    _strip_iri(match.group(1)),
                    _strip_iri(match.group(2)),
                    _strip_iri(match.group(3)),
                )
            else:
                fields = line.split("\t")
                if len(fields) != 3 or any(not f for f in fields):
                    raise IngestError(
                        f"{path}:{lineno}: expected 3 tab-separated fields, "
                        f"got {len(fields)}: {line[:120]!r}"
                    )
                yield fields[0], fields[1], fields[2]


def discover_split_files(directory: str | Path) -> dict[str, Path]:
    """Find one input file per split inside ``directory``.

    Looks for ``<split><ext>`` and ``<split><ext>.gz`` with ``ext`` in
    ``.tsv`` / ``.txt`` / ``.nt``.  ``train`` is required; ``valid`` and
    ``test`` are optional.  Two candidate files for one split is an error.
    """
    directory = Path(directory)
    found: dict[str, Path] = {}
    for split in SPLITS:
        candidates = [
            directory / f"{split}{suffix}{gz}"
            for suffix in _SPLIT_SUFFIXES
            for gz in ("", ".gz")
        ]
        present = [c for c in candidates if c.exists()]
        if len(present) > 1:
            raise IngestError(
                f"ambiguous input for split {split!r}: "
                + ", ".join(str(p) for p in present)
            )
        if present:
            found[split] = present[0]
    if "train" not in found:
        raise IngestError(
            f"no train split found in {directory} "
            f"(expected train.tsv/.txt/.nt, optionally .gz)"
        )
    return found


@dataclass
class IngestResult:
    """What one streaming ingestion pass produced."""

    directory: Path
    name: str
    num_entities: int
    num_relations: int
    splits: dict[str, int]
    stats: dict[str, dict] = field(default_factory=dict)


class _ChunkBuffer:
    """Fixed-size int32 row chunks; O(chunk) resident, O(n) total ids."""

    def __init__(self, chunk_rows: int = _CHUNK_ROWS):
        self._chunk_rows = chunk_rows
        self._chunks: list[np.ndarray] = []
        self._current = np.empty((chunk_rows, 3), dtype=np.int32)
        self._fill = 0

    def append(self, h: int, r: int, t: int) -> None:
        if self._fill == self._chunk_rows:
            self._chunks.append(self._current)
            self._current = np.empty((self._chunk_rows, 3), dtype=np.int32)
            self._fill = 0
        self._current[self._fill, 0] = h
        self._current[self._fill, 1] = r
        self._current[self._fill, 2] = t
        self._fill += 1

    def concat(self) -> np.ndarray:
        parts = self._chunks + [self._current[: self._fill]]
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


def ingest_files(
    split_paths: Mapping[str, str | Path],
    out: str | Path,
    fmt: str = "auto",
    name: str = "ingested",
) -> IngestResult:
    """Stream split files into a compact store directory at ``out``.

    One pass per split in train → valid → test order; vocabulary ids are
    assigned as labels appear, duplicates within a split are dropped
    (first occurrence kept) and counted in the manifest stats, as are
    valid/test entities never seen in train.
    """
    unknown = set(split_paths) - set(SPLITS)
    if unknown:
        raise IngestError(f"unknown splits {sorted(unknown)}; expected {SPLITS}")
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)

    entity_ids: dict[str, int] = {}
    relation_ids: dict[str, int] = {}

    def intern(table: dict[str, int], label: str) -> int:
        value = table.get(label)
        if value is None:
            value = len(table)
            if value >= INT32_LIMIT:
                raise IngestError(
                    "vocabulary exceeds int32 ids (2**31 labels); the compact "
                    "store caps out here by design"
                )
            table[label] = value
        return value

    counter = _ingest_counter()
    counts: dict[str, int] = {}
    stats: dict[str, dict] = {}
    train_entities = 0
    for split in SPLITS:
        path = split_paths.get(split)
        if path is None:
            rows = np.empty((0, 3), dtype=np.int32)
            read = 0
        else:
            buffer = _ChunkBuffer()
            read = 0
            for h, r, t in iter_triples(path, fmt):
                buffer.append(
                    intern(entity_ids, h),
                    intern(relation_ids, r),
                    intern(entity_ids, t),
                )
                read += 1
            rows = buffer.concat()
            del buffer
            rows = unique_rows_in_order(rows)
        np.save(out / f"{split}.npy", rows)
        counts[split] = int(rows.shape[0])
        split_stats: dict[str, int] = {
            "read": read,
            "written": int(rows.shape[0]),
            "duplicates": read - int(rows.shape[0]),
        }
        if split == "train":
            train_entities = len(entity_ids)
        elif rows.shape[0]:
            unseen = np.unique(rows[:, [0, 2]])
            split_stats["unseen_in_train_entities"] = int(
                np.count_nonzero(unseen >= train_entities)
            )
        else:
            split_stats["unseen_in_train_entities"] = 0
        stats[split] = split_stats
        counter.inc(int(rows.shape[0]), split=split)
        del rows

    with (out / "entities.txt").open("w", encoding="utf-8") as handle:
        for label in entity_ids:
            handle.write(label)
            handle.write("\n")
    with (out / "relations.txt").open("w", encoding="utf-8") as handle:
        for label in relation_ids:
            handle.write(label)
            handle.write("\n")

    manifest = {
        "format": COMPACT_FORMAT,
        "version": COMPACT_VERSION,
        "name": name,
        "num_entities": len(entity_ids),
        "num_relations": len(relation_ids),
        "id_dtype": "int32",
        "splits": counts,
        "stats": stats,
    }
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return IngestResult(
        directory=out,
        name=name,
        num_entities=len(entity_ids),
        num_relations=len(relation_ids),
        splits=counts,
        stats=stats,
    )


def ingest_directory(
    input_dir: str | Path,
    out: str | Path,
    fmt: str = "auto",
    name: str | None = None,
) -> IngestResult:
    """Discover split files in ``input_dir`` and ingest them into ``out``."""
    input_dir = Path(input_dir)
    paths = discover_split_files(input_dir)
    return ingest_files(
        paths, out, fmt=fmt, name=name if name is not None else input_dir.name
    )
