"""Relation schemas for the synthetic KG generator.

Every relation in a realistic KG has a *type signature* — the entity types
admissible as its head (domain) and tail (range) — and a *cardinality
class* (1-1, 1-M, M-1, M-M).  Both properties drive the paper's findings:

* type signatures are why uniformly sampled negatives are overwhelmingly
  easy (a random entity is usually type-incompatible with the query);
* cardinality is why the PT heuristic fails — for 1-1 relations like
  ``isMarriedTo`` the correct candidate has often never been *seen* on that
  side, so seen-only candidate sets miss it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Cardinality(enum.Enum):
    """Relation cardinality classes, paper Section 2."""

    ONE_TO_ONE = "1-1"
    ONE_TO_MANY = "1-M"
    MANY_TO_ONE = "M-1"
    MANY_TO_MANY = "M-M"

    @property
    def head_repeats(self) -> bool:
        """Whether one head may appear in many triples of the relation."""
        return self in (Cardinality.ONE_TO_MANY, Cardinality.MANY_TO_MANY)

    @property
    def tail_repeats(self) -> bool:
        """Whether one tail may appear in many triples of the relation."""
        return self in (Cardinality.MANY_TO_ONE, Cardinality.MANY_TO_MANY)


@dataclass(frozen=True)
class RelationSchema:
    """Blueprint for one synthetic relation.

    Parameters
    ----------
    name:
        Relation label.
    domain_types, range_types:
        Type ids admissible for heads / tails.
    cardinality:
        Cardinality class constraining how entities repeat.
    weight:
        Relative frequency of the relation in the generated triple stream.
    """

    name: str
    domain_types: tuple[int, ...]
    range_types: tuple[int, ...]
    cardinality: Cardinality
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.domain_types or not self.range_types:
            raise ValueError(f"relation {self.name!r} needs non-empty type signature")
        if self.weight <= 0:
            raise ValueError(f"relation {self.name!r} needs positive weight")

    def admits(self, head_types: tuple[int, ...], tail_types: tuple[int, ...]) -> bool:
        """Whether entities with the given types fit this relation."""
        head_ok = any(t in self.domain_types for t in head_types)
        tail_ok = any(t in self.range_types for t in tail_types)
        return head_ok and tail_ok
